"""Temporal scheduling of core-op instances onto allocated PEs (Algorithm 1).

The scheduler assigns every core-op instance a PE, a start cycle and an end
cycle such that the constraints of Section 5.2 hold:

* **RC** (resource conflict): instances on the same PE never overlap.
* **NBD** (no-buffer dependency): when two dependent instances are directly
  connected without a buffer, the consumer's execution covers the
  producer's, shifted by one cycle (``sv <= su + 1`` and ``ev >= eu + 1``)
  so the spike train can stream between them.
* **BD** (buffered dependency): when a buffer is inserted, the consumer
  starts strictly after the producer ends (``sv > eu``).
* **BC** (buffer conflict): readers of the same buffer port are separated
  by at least one sampling window.
* **SW** (sampling window): every instance executes for at least one
  sampling window (``ev >= sv + Gamma``).

Like the paper's greedy Algorithm 1, the scheduler walks the instance graph
in topological order and keeps producer/consumer pairs streaming (NBD)
whenever possible, inserting SMB buffers only when a resource conflict
forces the consumer to start later.  Unlike the paper's pseudo-code we
never push already-scheduled predecessors later; converting the offending
edge to a buffered edge is always sufficient to satisfy the constraints and
keeps the algorithm strictly forward (the resulting schedules satisfy the
same constraint system, which is what :func:`validate_schedule` checks).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import MappingError
from ..synthesizer.coreop import CoreOpInstanceGraph
from .allocation import AllocationResult

__all__ = [
    "ScheduledOp",
    "Schedule",
    "assign_pes",
    "schedule_instances",
    "validate_schedule",
]


@dataclass(frozen=True)
class ScheduledOp:
    """One scheduled core-op instance."""

    name: str
    group: str
    pe: str
    start: int
    end: int

    @property
    def duration(self) -> int:
        return self.end - self.start


@dataclass
class Schedule:
    """The result of temporal scheduling."""

    model: str
    window: int
    ops: dict[str, ScheduledOp] = field(default_factory=dict)
    #: edges (producer instance, consumer instance) that require an SMB buffer.
    buffered_edges: set[tuple[str, str]] = field(default_factory=set)

    @property
    def makespan(self) -> int:
        """Total cycles from the first start to the last end."""
        if not self.ops:
            return 0
        return max(op.end for op in self.ops.values()) - min(
            op.start for op in self.ops.values()
        )

    @property
    def n_buffers(self) -> int:
        return len(self.buffered_edges)

    def pes(self) -> set[str]:
        return {op.pe for op in self.ops.values()}

    def pe_intervals(self) -> dict[str, list[tuple[int, int]]]:
        """Sorted busy intervals per PE."""
        intervals: dict[str, list[tuple[int, int]]] = {}
        for op in self.ops.values():
            intervals.setdefault(op.pe, []).append((op.start, op.end))
        for pe in intervals:
            intervals[pe].sort()
        return intervals

    def pe_utilization(self) -> float:
        """Average fraction of the makespan each PE spends computing."""
        if not self.ops:
            return 0.0
        horizon = max(self.makespan, 1)
        intervals = self.pe_intervals()
        busy = sum(end - start for spans in intervals.values() for start, end in spans)
        return busy / (len(intervals) * horizon)


def assign_pes(
    instances: CoreOpInstanceGraph, allocation: AllocationResult
) -> dict[str, str]:
    """Assign each instance to one of its group's PEs.

    Tile ``t`` of reuse position ``r`` goes to duplicate ``r % duplication``,
    which spreads the reuse positions round-robin over the duplicates.
    """
    assignment: dict[str, str] = {}
    for instance in instances.instances.values():
        alloc = allocation.allocation(instance.group)
        duplicate = instance.reuse_index % alloc.duplication
        assignment[instance.name] = f"{instance.group}::pe{instance.tile_index}.{duplicate}"
    return assignment


def _earliest_free_slot(
    intervals: list[tuple[int, int]], earliest: int, duration: int
) -> int:
    """Earliest start >= ``earliest`` such that [start, start+duration) does
    not overlap any existing interval.  ``intervals`` must be sorted."""
    start = earliest
    for busy_start, busy_end in intervals:
        if busy_end <= start:
            continue
        if busy_start >= start + duration:
            break
        start = busy_end
    return start


def schedule_instances(
    instances: CoreOpInstanceGraph,
    allocation: AllocationResult,
    window: int = 64,
) -> Schedule:
    """Greedy Algorithm-1 scheduling of an instance graph."""
    if window <= 0:
        raise MappingError("window must be positive")
    assignment = assign_pes(instances, allocation)
    result = Schedule(model=instances.name, window=window)

    pe_busy: dict[str, list[tuple[int, int]]] = {}
    #: per producer instance: start time of the latest buffered read (BC).
    last_buffer_read: dict[str, int] = {}

    predecessors: dict[str, list[str]] = {name: [] for name in instances.instances}
    for edge in instances.edges:
        predecessors[edge.dst].append(edge.src)

    for instance in instances.topological():
        name = instance.name
        pe = assignment[name]
        preds = predecessors[name]
        pred_ops = [result.ops[p] for p in preds]

        # streaming (NBD) tentative timing
        if pred_ops:
            desired_start = min(op.start for op in pred_ops) + 1
            min_end = max(op.end for op in pred_ops) + 1
        else:
            desired_start = 0
            min_end = window

        buffered: set[str] = set()
        intervals = pe_busy.setdefault(pe, [])
        start = desired_start
        for _ in range(len(preds) + 2):
            duration = max(window, min_end - start)
            slot = _earliest_free_slot(intervals, start, duration)
            # NBD requires slot <= su + 1 for every unbuffered predecessor;
            # predecessors that cannot stream get a buffer (BD + BC).
            newly_buffered = [
                op for op in pred_ops
                if op.name not in buffered and slot > op.start + 1
            ]
            if not newly_buffered:
                start = slot
                break
            for op in newly_buffered:
                buffered.add(op.name)
            # recompute the earliest start under BD and BC for buffered preds
            start = desired_start
            unbuffered = [op for op in pred_ops if op.name not in buffered]
            if unbuffered:
                start = min(op.start for op in unbuffered) + 1
                min_end = max(op.end for op in unbuffered) + 1
            else:
                min_end = 0
            for op in pred_ops:
                if op.name in buffered:
                    start = max(start, op.end + 1)
                    if op.name in last_buffer_read:
                        start = max(start, last_buffer_read[op.name] + window)
        else:
            # all predecessors buffered and slot search converged
            duration = max(window, min_end - start)
            start = _earliest_free_slot(intervals, start, duration)

        duration = max(window, min_end - start)
        end = start + duration

        scheduled = ScheduledOp(name=name, group=instance.group, pe=pe, start=start, end=end)
        result.ops[name] = scheduled
        intervals.append((start, end))
        intervals.sort()
        for op in pred_ops:
            if op.name in buffered:
                result.buffered_edges.add((op.name, name))
                last_buffer_read[op.name] = max(last_buffer_read.get(op.name, 0), start)
    return result


def validate_schedule(
    schedule: Schedule, instances: CoreOpInstanceGraph
) -> list[str]:
    """Check every constraint of Section 5.2; returns a list of violations."""
    violations: list[str] = []
    window = schedule.window

    # SW
    for op in schedule.ops.values():
        if op.duration < window:
            violations.append(f"SW: {op.name} runs {op.duration} < {window} cycles")

    # RC
    for pe, intervals in schedule.pe_intervals().items():
        for (s1, e1), (s2, e2) in zip(intervals, intervals[1:], strict=False):
            if s2 < e1:
                violations.append(f"RC: overlap on {pe}: ({s1},{e1}) and ({s2},{e2})")

    # dependencies
    for edge in instances.edges:
        producer = schedule.ops.get(edge.src)
        consumer = schedule.ops.get(edge.dst)
        if producer is None or consumer is None:
            violations.append(f"missing schedule entry for edge {edge.src}->{edge.dst}")
            continue
        if (edge.src, edge.dst) in schedule.buffered_edges:
            if consumer.start <= producer.end:
                violations.append(
                    f"BD: {edge.dst} starts at {consumer.start} <= producer end {producer.end}"
                )
        else:
            if consumer.start > producer.start + 1:
                violations.append(
                    f"NBD: {edge.dst} starts {consumer.start} > {producer.start}+1"
                )
            if consumer.end < producer.end + 1:
                violations.append(
                    f"NBD: {edge.dst} ends {consumer.end} < {producer.end}+1"
                )

    # BC: buffered readers of the same producer separated by >= window
    readers: dict[str, list[int]] = {}
    for src, dst in schedule.buffered_edges:
        readers.setdefault(src, []).append(schedule.ops[dst].start)
    for src, starts in readers.items():
        starts.sort()
        for a, b in zip(starts, starts[1:], strict=False):
            if b - a < window and b != a:
                violations.append(
                    f"BC: readers of {src} start {a} and {b} within one window"
                )
    return violations
