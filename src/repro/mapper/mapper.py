"""The spatial-to-temporal mapper: core-op graph -> function-block netlist.

The mapper performs the two sub-steps of Section 5.2:

1. **Resource allocation** — group core-ops by shared weights, give every
   group at least one PE per crossbar tile, and duplicate the
   heavily-reused groups to balance the pipeline stages
   (:mod:`repro.mapper.allocation`).
2. **Scheduling** — order the core-op executions on their PEs under the
   RC / NBD / BD / BC / SW constraints, inserting SMB buffers where
   streaming is impossible (:mod:`repro.mapper.schedule`), and generate the
   control logic (:mod:`repro.mapper.control`).

The result is a :class:`MappingResult` holding the allocation, the
function-block netlist, the control plan and (for models small enough to
expand to instance level) the detailed schedule.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..arch.params import FPSAConfig
from ..errors import CapacityError
from ..synthesizer.coreop import CoreOpGraph
from .allocation import AllocationResult, allocate, allocate_for_pe_budget
from .control import ControlPlan, plan_control
from .netlist import FunctionBlockNetlist, build_netlist
from .schedule import Schedule, schedule_instances

__all__ = ["MappingResult", "SpatialTemporalMapper"]

#: expanding more instances than this is pointless for scheduling studies
#: and would dominate runtime; larger models use the group-level pipeline model.
_DETAILED_SCHEDULE_LIMIT = 20_000


@dataclass
class MappingResult:
    """Everything the mapper produces for one model."""

    coreops: CoreOpGraph
    allocation: AllocationResult
    netlist: FunctionBlockNetlist
    control: ControlPlan
    schedule: Schedule | None = None

    @property
    def model(self) -> str:
        return self.coreops.name

    @property
    def duplication_degree(self) -> int:
        return self.allocation.duplication_degree

    def chip_area_mm2(self, config: FPSAConfig | None = None) -> float:
        config = config if config is not None else FPSAConfig()
        return config.chip_area_mm2(
            self.netlist.n_pe, self.netlist.n_smb, self.netlist.n_clb
        )

    def summary(self) -> str:
        lines = [
            f"mapping of {self.model!r} (duplication degree {self.duplication_degree})",
            f"  PEs: {self.netlist.n_pe}  SMBs: {self.netlist.n_smb}  CLBs: {self.netlist.n_clb}",
            f"  bottleneck iterations: {self.allocation.max_iterations}",
            f"  temporal utilization: {self.allocation.temporal_utilization():.3f}",
        ]
        if self.schedule is not None:
            lines.append(
                f"  detailed schedule: makespan {self.schedule.makespan} cycles, "
                f"{self.schedule.n_buffers} buffered edges"
            )
        return "\n".join(lines)


class SpatialTemporalMapper:
    """Map a core-op graph onto FPSA function blocks."""

    def __init__(self, config: FPSAConfig | None = None):
        self.config = config if config is not None else FPSAConfig()

    def map(
        self,
        coreops: CoreOpGraph,
        duplication_degree: int = 1,
        pe_budget: int | None = None,
        detailed_schedule: bool = False,
        max_schedule_reuse: int | None = None,
        target_iterations: int | None = None,
        replication: int | None = None,
        max_pes: int | None = None,
    ) -> MappingResult:
        """Map ``coreops`` onto function blocks.

        Parameters
        ----------
        duplication_degree:
            Model duplication degree (ignored when ``pe_budget`` is given).
        pe_budget:
            When set, pick the largest duplication degree that fits the
            budget instead of using ``duplication_degree``.
        detailed_schedule:
            Run the instance-level Algorithm-1 scheduler (small models only).
        max_schedule_reuse:
            Cap on reuse positions expanded per group for the detailed
            schedule; ``None`` expands everything.
        target_iterations / replication:
            Override the bottleneck-derived pipeline pace (set by the
            multi-chip backend so every shard matches the whole-model
            allocation; see :func:`repro.mapper.allocation.allocate`).
        max_pes:
            Pre-flight capacity check: raise a
            :class:`~repro.errors.CapacityError` (with required-vs-available
            counts) when the allocation exceeds this many PEs, *before* any
            netlist is built or P&R annealing starts.
        """
        pe = self.config.pe
        if pe_budget is not None:
            allocation = allocate_for_pe_budget(coreops, pe_budget, pe)
            if allocation is None:
                minimum = allocate(coreops, 1, pe).total_pes
                raise CapacityError(
                    f"model {coreops.name!r} needs at least "
                    f"{minimum} PEs; budget is {pe_budget}",
                    details={
                        "model": coreops.name,
                        "minimum_pes": minimum,
                        "pe_budget": pe_budget,
                    },
                )
        else:
            allocation = allocate(
                coreops,
                duplication_degree,
                pe,
                target_iterations=target_iterations,
                replication=replication,
            )
        if max_pes is not None and allocation.total_pes > max_pes:
            raise CapacityError(
                f"model {coreops.name!r} needs {allocation.total_pes} PEs at "
                f"duplication degree {allocation.duplication_degree} but the "
                f"chip provides {max_pes}; lower the duplication degree or "
                f"compile with num_chips='auto' to shard across chips",
                details={
                    "model": coreops.name,
                    "required_pes": allocation.total_pes,
                    "available_pes": max_pes,
                    "duplication_degree": allocation.duplication_degree,
                },
            )

        netlist = build_netlist(coreops, allocation, self.config)
        control = plan_control(allocation, netlist, self.config)
        # re-emit the netlist with the exact CLB count from the control plan
        netlist = build_netlist(coreops, allocation, self.config, clb_blocks=control.clbs_needed)

        schedule = None
        if detailed_schedule:
            instances = coreops.expand(
                max_rows=pe.rows,
                max_cols=pe.logical_cols,
                max_reuse=max_schedule_reuse,
                max_instances=_DETAILED_SCHEDULE_LIMIT,
            )
            schedule = schedule_instances(instances, allocation, window=pe.sampling_window)
        return MappingResult(
            coreops=coreops,
            allocation=allocation,
            netlist=netlist,
            control=control,
            schedule=schedule,
        )
