"""The spatial-to-temporal mapper (core-op graph -> function-block netlist)."""

from .allocation import (
    AllocationResult,
    GroupAllocation,
    allocate,
    allocate_for_pe_budget,
)
from .control import ControlPlan, plan_control
from .mapper import MappingResult, SpatialTemporalMapper
from .netlist import Block, BlockType, FunctionBlockNetlist, Net, build_netlist
from .passes import MappingPass
from .schedule import (
    Schedule,
    ScheduledOp,
    assign_pes,
    schedule_instances,
    validate_schedule,
)

__all__ = [
    "GroupAllocation",
    "AllocationResult",
    "allocate",
    "allocate_for_pe_budget",
    "ScheduledOp",
    "Schedule",
    "assign_pes",
    "schedule_instances",
    "validate_schedule",
    "Block",
    "BlockType",
    "Net",
    "FunctionBlockNetlist",
    "build_netlist",
    "ControlPlan",
    "plan_control",
    "MappingResult",
    "SpatialTemporalMapper",
    "MappingPass",
]
