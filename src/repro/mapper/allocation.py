"""PE resource allocation (the spatial half of the spatial-to-temporal mapper).

Every weight group needs at least one PE per crossbar tile to hold its
weights (the *minimum storage requirement*).  Groups whose weights are
reused many times per inference (convolutional layers, synthesized pooling)
become pipeline bottlenecks, so extra PEs are assigned to them as
*duplicates*; a group with duplication ``d`` finishes its ``reuse``
core-ops in ``ceil(reuse / d)`` iterations.

Following Section 5.2, the *duplication degree of the model* is the
duplication assigned to the group with the maximum reuse degree; all other
groups receive just enough duplicates to keep their iteration count at or
below that group's, which balances the pipeline stages.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..arch.params import PEParams
from ..errors import InvalidRequestError, MappingError
from ..synthesizer.coreop import CoreOpGraph, WeightGroup

__all__ = [
    "GroupAllocation",
    "AllocationResult",
    "allocate",
    "allocate_for_pe_budget",
]


@dataclass(frozen=True)
class GroupAllocation:
    """PE assignment of one weight group."""

    group: str
    tiles: int
    duplication: int
    reuse: int

    def __post_init__(self) -> None:
        if self.tiles <= 0 or self.duplication <= 0 or self.reuse <= 0:
            raise MappingError("tiles, duplication and reuse must be positive")
        if self.duplication > self.reuse:
            raise MappingError(
                f"group {self.group!r}: duplication {self.duplication} exceeds reuse {self.reuse}"
            )

    @property
    def pes(self) -> int:
        """PEs assigned to this group (tiles x duplicates)."""
        return self.tiles * self.duplication

    @property
    def iterations(self) -> int:
        """Sequential iterations needed to process all reuse positions."""
        return math.ceil(self.reuse / self.duplication)


@dataclass(frozen=True)
class AllocationResult:
    """The complete PE allocation of one model.

    ``replication`` counts how many full copies of the mapped model are
    instantiated: once every group has enough duplicates to finish in a
    single iteration, further duplication can only help by processing
    independent samples in parallel, so the surplus duplication degree is
    spent on whole-model replicas (this is what lets small networks such as
    the MLP keep scaling to 64x in Figure 8 / Table 3).
    """

    model: str
    duplication_degree: int
    allocations: dict[str, GroupAllocation]
    replication: int = 1

    def __post_init__(self) -> None:
        if self.replication <= 0:
            raise MappingError("replication must be positive")

    @property
    def pes_per_replica(self) -> int:
        return sum(a.pes for a in self.allocations.values())

    @property
    def total_pes(self) -> int:
        return self.replication * self.pes_per_replica

    @property
    def max_iterations(self) -> int:
        """Iterations of the slowest (bottleneck) pipeline stage."""
        return max((a.iterations for a in self.allocations.values()), default=1)

    @property
    def min_pes(self) -> int:
        """PEs needed for minimum storage (duplication degree 1)."""
        return sum(a.tiles for a in self.allocations.values())

    def allocation(self, group: str) -> GroupAllocation:
        try:
            return self.allocations[group]
        except KeyError:
            raise KeyError(f"no allocation for group {group!r}") from None  # repro-lint: disable=ERR001

    def iterations(self, group: str) -> int:
        return self.allocation(group).iterations

    def temporal_utilization(self) -> float:
        """Average busy fraction of the allocated PEs.

        In the steady-state pipeline every stage has ``max_iterations``
        cycles available but only keeps its PEs busy for its own iteration
        count; the weighted average of ``iterations_g / max_iterations``
        over PEs is the temporal utilization, whose reciprocal shortfall is
        the temporal utilization bound of Figure 8c.
        """
        horizon = self.max_iterations
        if horizon == 0 or not self.allocations:
            return 0.0
        busy = sum(a.pes * a.iterations for a in self.allocations.values())
        return busy / (self.pes_per_replica * horizon)


def _balanced_duplication(group: WeightGroup, target_iterations: int) -> int:
    """Smallest duplication that keeps the group's iterations <= target."""
    if target_iterations <= 0:
        raise MappingError("target_iterations must be positive")
    duplication = math.ceil(group.reuse / target_iterations)
    return max(1, min(group.reuse, duplication))


def allocate(
    coreops: CoreOpGraph,
    duplication_degree: int = 1,
    pe: PEParams | None = None,
    *,
    target_iterations: int | None = None,
    replication: int | None = None,
) -> AllocationResult:
    """Allocate PEs for a core-op graph at a given model duplication degree.

    The group with the maximum reuse degree receives ``duplication_degree``
    duplicates; every other group receives the minimum duplication that
    keeps its iteration count at or below the resulting bottleneck.

    ``target_iterations`` / ``replication`` override the bottleneck-derived
    values.  The multi-chip backend (:mod:`repro.partition`) uses this to
    allocate each shard against the *whole model's* pipeline pace, so the
    per-group allocations of the shards are exactly the whole-model
    allocation restricted to the shard's groups (a shard must not
    re-balance against its own local bottleneck, which would over-duplicate
    or over-replicate groups relative to the single-chip mapping).
    """
    if duplication_degree <= 0:
        raise InvalidRequestError(
            f"duplication_degree must be positive, got {duplication_degree}",
            details={"duplication_degree": duplication_degree},
        )
    pe = pe if pe is not None else PEParams()

    groups = coreops.groups()
    if not groups:
        raise MappingError(
            f"core-op graph {coreops.name!r} has no groups to allocate",
            details={"model": coreops.name},
        )

    max_reuse = coreops.max_reuse_degree
    bottleneck_dup = min(duplication_degree, max_reuse)
    if target_iterations is None:
        target_iterations = math.ceil(max_reuse / bottleneck_dup)
    elif target_iterations <= 0:
        raise InvalidRequestError(
            f"target_iterations must be positive, got {target_iterations}",
            details={"target_iterations": target_iterations},
        )
    if replication is None:
        replication = max(1, duplication_degree // max_reuse)
    elif replication <= 0:
        raise InvalidRequestError(
            f"replication must be positive, got {replication}",
            details={"replication": replication},
        )

    allocations: dict[str, GroupAllocation] = {}
    for group in groups:
        duplication = _balanced_duplication(group, target_iterations)
        allocations[group.name] = GroupAllocation(
            group=group.name,
            tiles=group.min_pes(pe.rows, pe.logical_cols),
            duplication=duplication,
            reuse=group.reuse,
        )
    return AllocationResult(
        model=coreops.name,
        duplication_degree=duplication_degree,
        allocations=allocations,
        replication=replication,
    )


def allocate_for_pe_budget(
    coreops: CoreOpGraph,
    pe_budget: int,
    pe: PEParams | None = None,
) -> AllocationResult | None:
    """Find the largest duplication degree whose allocation fits ``pe_budget``.

    Returns ``None`` when even the minimum-storage allocation does not fit
    (the model cannot be mapped onto the chip at all).
    """
    if pe_budget <= 0:
        return None
    pe = pe if pe is not None else PEParams()

    base = allocate(coreops, duplication_degree=1, pe=pe)
    if base.total_pes > pe_budget:
        return None

    # duplication beyond the maximum reuse degree is spent on whole-model
    # replicas, so the search space extends past max_reuse up to the point
    # where even fully-duplicated replicas exhaust the budget.
    max_reuse = max(1, coreops.max_reuse_degree)
    high = max_reuse * max(1, pe_budget // base.total_pes + 1)
    low = 1
    best = base
    while low <= high:
        mid = (low + high) // 2
        candidate = allocate(coreops, duplication_degree=mid, pe=pe)
        if candidate.total_pes <= pe_budget:
            best = candidate
            low = mid + 1
        else:
            high = mid - 1
    return best
