"""Deterministic seed derivation for every stochastic stage.

A compile carries at most one master ``seed``; each stochastic consumer
(the simulated-annealing placer, Monte-Carlo variation studies, ...)
derives its own stage seed from it with :func:`derive_seed`.  Derivation is
content-addressed (SHA-256 of master seed + stage name), so

* the same request always produces bit-identical results,
* distinct stages never share a random stream, and
* adding a new stochastic stage cannot perturb the streams of existing
  ones — which is what keeps the golden differential tests stable.
"""

from __future__ import annotations

import hashlib

__all__ = ["derive_seed"]


def derive_seed(master_seed: int, stage: str) -> int:
    """A stable, stage-specific seed derived from one master seed."""
    digest = hashlib.sha256(f"{master_seed}:{stage}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % (2**31)
