"""The differential oracle: one spec, compiled across a configuration
lattice, must always tell the same story.

The compiler stack promises a family of equivalences (established across
PRs 3-7) that this module sweeps over arbitrary generated models:

==================  ====================================================
configuration axis  contract
==================  ====================================================
repeated runs       same seed => bit-identical ``ResultSummary``
warm cache          cache-hit artifacts == freshly computed ones
shared cache        pickle round-trip through the cross-process tier is
                    lossless (cold fill and warm reload both match)
``pnr_jobs`` 1 / N  the parallel P&R engine is jobs-invariant
jit on / off        numba kernels (or their fallback) are bit-identical
``num_chips=1``     the 1-chip partition is the identity (modulo the
                    ``partition`` summary section it adds)
``num_chips=auto``  deterministic; succeeds whenever the classic flow
                    does, and turns the over-capacity ``CapacityError``
                    of ``num_chips=1`` into a sharded compile
dedup on / off      subgraph splice-on-hit is bit-identical to fresh
                    lowering, from a cold store and from a fully warm
                    one (PR 9)
==================  ====================================================

Every compile runs with IR verification on (the same checks
``REPRO_VERIFY=1`` enables globally), and the final artifacts are run
through :func:`repro.analysis.verify.verify_artifacts` once more as an
independent second oracle.  Failures surface as typed errors; for a
deterministic configuration pair the *errors* must match too
(code/type/message equivalence), so a config that fails differently from
its twin is as much a finding as a diverging summary.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Mapping, Sequence

from ..analysis.verify import verify_artifacts
from ..core.cache import StageCache
from ..core.compiler import FPSACompiler
from ..core.dedup import SubgraphStore
from ..core.shared_cache import SharedStageCache
from ..errors import FPSAError, VerificationError
from ..pnr.options import JIT_ENV_VAR
from ..service.schemas import ErrorPayload, ResultSummary
from .generate import PNR_PE_LIMIT, ModelSpec, build_graph, estimate_pes

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..arch.params import FPSAConfig

__all__ = [
    "CONFIG_GROUPS",
    "Outcome",
    "Finding",
    "SpecCheck",
    "strip_seconds",
    "compile_spec",
    "check_spec",
]

#: configuration-lattice groups ``check_spec`` can run (``subset=``).
CONFIG_GROUPS = ("repeat", "warm", "shared", "pnr", "chips", "dedup")


def strip_seconds(summary: Mapping[str, Any] | None) -> dict[str, Any] | None:
    """A copy of a ``ResultSummary`` dict without wall-clock fields (the
    P&R section embeds its ``*_seconds`` stage timings)."""
    if summary is None:
        return None
    stripped: dict[str, Any] = {}
    for section, value in summary.items():
        if isinstance(value, dict):
            value = {k: v for k, v in value.items() if not k.endswith("_seconds")}
        stripped[section] = value
    return stripped


@dataclass(frozen=True)
class Outcome:
    """What one configuration's compile of one spec produced."""

    config: str
    status: str  # "ok" | "error"
    #: seconds-stripped ``ResultSummary`` dict (ok outcomes only).
    summary: dict[str, Any] | None = None
    #: typed error identity (ok outcomes: None).  Only the deterministic
    #: fields (code/type/message) participate in equivalence.
    error: dict[str, Any] | None = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def comparable(self, *, ignore_partition: bool = False) -> tuple:
        summary = self.summary
        if summary is not None and ignore_partition:
            summary = {k: v for k, v in summary.items() if k != "partition"}
        frozen_error = (
            tuple(sorted((k, str(v)) for k, v in self.error.items()))
            if self.error is not None
            else None
        )
        return (self.status, _freeze(summary), frozen_error)


def _freeze(value: Any) -> Any:
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    return value


@dataclass(frozen=True)
class Finding:
    """One surviving disagreement between two lattice points."""

    spec: ModelSpec
    config: str
    kind: str  # "determinism" | "error-divergence" | "chips" | "verify"
    detail: str

    def to_dict(self) -> dict[str, Any]:
        return {
            "spec": self.spec.to_dict(),
            "spec_id": self.spec.spec_id(),
            "config": self.config,
            "kind": self.kind,
            "detail": self.detail,
        }


@dataclass
class SpecCheck:
    """The oracle's verdict on one spec."""

    spec: ModelSpec
    findings: list[Finding] = field(default_factory=list)
    configs: list[str] = field(default_factory=list)
    compiles: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings


def _error_identity(payload: ErrorPayload) -> dict[str, Any]:
    return {"code": payload.code, "type": payload.type, "message": payload.message}


def compile_spec(
    spec: ModelSpec,
    *,
    config_name: str,
    seed: int = 0,
    config: "FPSAConfig | None" = None,
    cache: StageCache | None = None,
    run_pnr: bool = False,
    pnr_jobs: int | None = None,
    jit: bool | None = None,
    num_chips: int | str | None = None,
    dedup_store: SubgraphStore | None = None,
) -> Outcome:
    """Compile one spec under one lattice configuration.

    Never raises for compile failures: typed :class:`FPSAError`\\ s (and
    unexpected exceptions, mapped to the ``internal`` code exactly like
    :func:`repro.service.client.serve_request`) become error outcomes so
    the oracle can compare failure identities across configurations.
    """
    jit_before = os.environ.get(JIT_ENV_VAR)
    if jit is not None:
        os.environ[JIT_ENV_VAR] = "1" if jit else "0"
    try:
        graph = build_graph(spec)
        compiler = FPSACompiler(
            config=config,
            cache=cache if cache is not None else StageCache(),
            dedup_store=dedup_store,
        )
        result = compiler.compile(
            graph,
            seed=seed,
            run_pnr=run_pnr,
            pnr_jobs=pnr_jobs,
            num_chips=num_chips,
            verify=True,
            dedup=dedup_store is not None,
        )
    except FPSAError as exc:
        return Outcome(
            config=config_name,
            status="error",
            error=_error_identity(ErrorPayload.from_exception(exc)),
        )
    except Exception as exc:  # noqa: BLE001 - oracle boundary: compare, don't crash
        return Outcome(
            config=config_name,
            status="error",
            error=_error_identity(ErrorPayload.from_exception(exc)),
        )
    finally:
        if jit is not None:
            if jit_before is None:
                os.environ.pop(JIT_ENV_VAR, None)
            else:
                os.environ[JIT_ENV_VAR] = jit_before
    # second oracle: the standalone IR verifiers over the final artifacts
    # (the in-pipeline interposition already ran; this re-checks the
    # artifacts exactly as a cache/store boundary would)
    try:
        verify_artifacts(
            {
                name: getattr(result, attr)
                for name, attr in (
                    ("graph", "graph"),
                    ("coreops", "coreops"),
                    ("partition", "partition"),
                    ("mapping", "mapping"),
                    ("pnr", "pnr"),
                )
                if getattr(result, attr, None) is not None
            },
            ctx=result,
        )
    except VerificationError as exc:
        return Outcome(
            config=config_name,
            status="error",
            error=_error_identity(ErrorPayload.from_exception(exc)),
        )
    summary = ResultSummary.from_result(result, compiler.config).to_dict()
    return Outcome(
        config=config_name, status="ok", summary=strip_seconds(summary)
    )


def check_spec(
    spec: ModelSpec,
    *,
    seed: int = 0,
    config: "FPSAConfig | None" = None,
    pnr_jobs: int = 4,
    subset: Sequence[str] | None = None,
    shared_dir: str | None = None,
) -> SpecCheck:
    """Run the full differential lattice over one spec.

    ``subset`` restricts the lattice to the named :data:`CONFIG_GROUPS`
    (the shrinker re-checks candidates against only the groups that
    failed); ``shared_dir`` overrides the temporary directory of the
    shared-cache tier.
    """
    groups = tuple(subset) if subset is not None else CONFIG_GROUPS
    unknown = sorted(set(groups) - set(CONFIG_GROUPS))
    if unknown:
        raise FPSAError(f"unknown config group(s): {unknown}")
    check = SpecCheck(spec=spec)

    def run(config_name: str, **kwargs: Any) -> Outcome:
        check.compiles += 1
        check.configs.append(config_name)
        return compile_spec(
            spec, config_name=config_name, seed=seed, config=config, **kwargs
        )

    def expect_same(
        reference: Outcome,
        outcome: Outcome,
        *,
        kind: str = "determinism",
        ignore_partition: bool = False,
    ) -> None:
        if outcome.comparable(ignore_partition=ignore_partition) == reference.comparable(
            ignore_partition=ignore_partition
        ):
            return
        if reference.status != outcome.status:
            detail = (
                f"{reference.config} -> {reference.status} "
                f"({(reference.error or {}).get('code', '-')}) but "
                f"{outcome.config} -> {outcome.status} "
                f"({(outcome.error or {}).get('code', '-')})"
            )
            kind = "error-divergence"
        elif reference.status == "error":
            detail = (
                f"error identity diverged: {reference.config} raised "
                f"{reference.error} but {outcome.config} raised {outcome.error}"
            )
            kind = "error-divergence"
        else:
            diverged = _diff_sections(
                reference.summary or {}, outcome.summary or {}, ignore_partition
            )
            detail = (
                f"summary diverged between {reference.config} and "
                f"{outcome.config} in section(s): {', '.join(diverged) or '?'}"
            )
        check.findings.append(
            Finding(spec=spec, config=outcome.config, kind=kind, detail=detail)
        )

    base_cache = StageCache()
    base = run("base", cache=base_cache)

    if "repeat" in groups:
        expect_same(base, run("repeat"))
    if "warm" in groups:
        expect_same(base, run("warm", cache=base_cache))
    if "shared" in groups:
        if shared_dir is not None:
            _check_shared(spec, base, run, expect_same, shared_dir)
        else:
            with tempfile.TemporaryDirectory(prefix="repro-fuzz-shared-") as tmp:
                _check_shared(spec, base, run, expect_same, tmp)
    if "pnr" in groups and spec.size_class == "small" and estimate_pes(spec) <= PNR_PE_LIMIT:
        pnr_base = run("pnr-base", run_pnr=True)
        expect_same(pnr_base, run("pnr-repeat", run_pnr=True))
        expect_same(
            pnr_base, run(f"pnr-jobs-{pnr_jobs}", run_pnr=True, pnr_jobs=pnr_jobs)
        )
        expect_same(pnr_base, run("pnr-jit", run_pnr=True, jit=True))
        expect_same(pnr_base, run("pnr-nojit", run_pnr=True, jit=False))
    if "dedup" in groups:
        store = SubgraphStore()
        expect_same(base, run("dedup-cold", dedup_store=store))
        # the same store, now holding every fragment: splice-on-hit paths
        expect_same(base, run("dedup-warm", dedup_store=store))
    if "chips" in groups:
        chips_a = run("chips1-a", num_chips=1)
        chips_b = run("chips1-b", num_chips=1)
        expect_same(chips_a, chips_b)
        if chips_a.ok:
            # the 1-chip partition is the identity modulo its summary section
            expect_same(base, chips_a, kind="chips", ignore_partition=True)
        elif base.ok and (chips_a.error or {}).get("code") != "capacity_error":
            check.findings.append(
                Finding(
                    spec=spec,
                    config=chips_a.config,
                    kind="error-divergence",
                    detail=(
                        "num_chips=1 failed where the classic flow succeeded, "
                        f"and not with capacity_error: {chips_a.error}"
                    ),
                )
            )
        auto_a = run("auto-a", num_chips="auto")
        expect_same(auto_a, run("auto-b", num_chips="auto"))
        if base.ok and not auto_a.ok:
            check.findings.append(
                Finding(
                    spec=spec,
                    config=auto_a.config,
                    kind="chips",
                    detail=(
                        "num_chips='auto' failed where the classic flow "
                        f"succeeded: {auto_a.error}"
                    ),
                )
            )
        elif chips_a.ok:
            # under capacity, auto resolves to 1 chip: exact identity
            expect_same(chips_a, auto_a, kind="chips")
    return check


def _check_shared(spec, base, run, expect_same, directory: str) -> None:
    shared = SharedStageCache(directory)
    expect_same(base, run("shared-cold", cache=StageCache(shared=shared)))
    # a different in-memory tier over the same directory: artifacts now
    # come back through the pickle round-trip of the shared tier
    expect_same(
        base, run("shared-warm", cache=StageCache(shared=SharedStageCache(directory)))
    )


def _diff_sections(
    a: Mapping[str, Any], b: Mapping[str, Any], ignore_partition: bool
) -> list[str]:
    sections: Iterable[str] = sorted(set(a) | set(b))
    diverged = []
    for section in sections:
        if ignore_partition and section == "partition":
            continue
        if a.get(section) != b.get(section):
            diverged.append(section)
    return diverged
