"""Seeded random-model generation for the differential fuzzer.

A :class:`ModelSpec` is a compact, JSON-round-trippable description of a
random network: an input shape, a bit width, and an ordered list of
:class:`LayerSpec` entries drawn from the op mix the zoo exercises (conv,
pooling, dense, residual ``branch_add``, inception-style ``concat``).
:func:`build_graph` lowers a spec to a valid
:class:`~repro.graph.graph.ComputationalGraph` through the same
:class:`~repro.graph.builder.GraphBuilder` the model zoo uses, normalising
whatever a spec asks for into a legal graph (kernels are clamped to the
current spatial extent, a flatten is inserted before the first dense
layer, pooling a 1x1 map is a no-op, ...).  Normalisation makes
``build_graph`` *total* over valid specs, which is what lets the shrinker
mutate specs freely without tracking shape legality itself.

Generation is deterministic: ``generate_spec(seed, index)`` derives a
per-spec stream with :func:`repro.seeding.derive_seed`, so a campaign is
reproducible from its ``(seed, model count)`` pair alone.  Size classes
span under-capacity models (``small`` — also eligible for the P&R
configuration lattice), models close to the per-chip PE capacity
(``near``), and models exceeding it (``over`` — these exercise the
``CapacityError`` pre-flight on ``num_chips=1`` and the ``"auto"``
shard-it path).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
import random
from dataclasses import dataclass
from typing import Any, Mapping

from ..errors import InvalidRequestError
from ..graph.builder import GraphBuilder
from ..graph.graph import ComputationalGraph
from ..seeding import derive_seed

__all__ = [
    "LAYER_KINDS",
    "SIZE_CLASSES",
    "MIXED",
    "LayerSpec",
    "ModelSpec",
    "build_graph",
    "estimate_pes",
    "generate_spec",
    "generate_specs",
    "size_class_for_index",
]

#: the op mix a layer entry may request.
LAYER_KINDS = ("conv", "pool", "dense", "branch_add", "concat")

#: generator size classes, relative to the per-chip PE capacity.
SIZE_CLASSES = ("small", "near", "over")

#: pseudo size class: the default per-index rotation of SIZE_CLASSES.
MIXED = "mixed"

#: specs at or under this estimated PE count also run the P&R lattice.
PNR_PE_LIMIT = 48

# crossbar geometry of the default PE (see repro.arch.params.PEParams) —
# used only for the *estimate*; the authoritative number is the mapper's.
_PE_ROWS = 256
_PE_COLS = 256

#: default per-chip capacity (repro.arch.params.InterChipParams).
_CHIP_PES = 2048


@dataclass(frozen=True)
class LayerSpec:
    """One requested layer of a random model.

    ``width`` is the conv ``out_channels`` / dense ``out_features`` /
    per-branch channel count of a ``concat``; ``kernel`` is the conv or
    pooling kernel (ignored by ``dense``).  ``branch_add`` ignores
    ``width`` (the residual branch must preserve the current shape).
    """

    kind: str
    width: int = 0
    kernel: int = 0

    def __post_init__(self) -> None:
        if self.kind not in LAYER_KINDS:
            raise InvalidRequestError(
                f"layer kind must be one of {LAYER_KINDS}, got {self.kind!r}",
                details={"kind": repr(self.kind)},
            )
        for name in ("width", "kernel"):
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool) or value < 0:
                raise InvalidRequestError(
                    f"layer {name} must be a non-negative integer, got {value!r}",
                    details={"kind": self.kind, name: repr(value)},
                )
        if self.kind in ("conv", "dense", "concat") and self.width < 1:
            raise InvalidRequestError(
                f"{self.kind} layers need width >= 1, got {self.width}",
                details={"kind": self.kind, "width": self.width},
            )

    def to_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "width": self.width, "kernel": self.kernel}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "LayerSpec":
        unknown = sorted(set(data) - {"kind", "width", "kernel"})
        if unknown:
            raise InvalidRequestError(
                f"unknown field(s) {unknown} in LayerSpec payload",
                details={"unknown_fields": unknown},
            )
        if "kind" not in data:
            raise InvalidRequestError("LayerSpec payload is missing 'kind'")
        return cls(
            kind=str(data["kind"]),
            width=int(data.get("width", 0)),
            kernel=int(data.get("kernel", 0)),
        )


@dataclass(frozen=True)
class ModelSpec:
    """A compact, serializable description of one random model."""

    name: str
    input_shape: tuple[int, ...]
    layers: tuple[LayerSpec, ...]
    bits: int = 6
    size_class: str = "small"
    #: how many times the ``layers`` block is stacked end-to-end — the
    #: repeated-structure knob the subgraph dedup cache feeds on.  ``1``
    #: (the default, and what every pre-knob corpus payload parses as)
    #: means the block appears once.
    repeat: int = 1
    #: campaign seed the spec was generated from (provenance only; a spec
    #: loaded from a corpus file keeps the seed it was found under).
    seed: int | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise InvalidRequestError(
                f"spec name must be a non-empty string, got {self.name!r}"
            )
        shape = tuple(int(d) for d in self.input_shape)
        if len(shape) not in (1, 3) or any(d < 1 for d in shape):
            raise InvalidRequestError(
                f"input_shape must be (features,) or (channels, h, w) of "
                f"positive dims, got {self.input_shape!r}",
                details={"input_shape": repr(self.input_shape)},
            )
        object.__setattr__(self, "input_shape", shape)
        layers = tuple(
            layer if isinstance(layer, LayerSpec) else LayerSpec.from_dict(layer)
            for layer in self.layers
        )
        if not layers:
            raise InvalidRequestError("a ModelSpec needs at least one layer")
        object.__setattr__(self, "layers", layers)
        if not isinstance(self.bits, int) or isinstance(self.bits, bool) or self.bits < 1:
            raise InvalidRequestError(f"bits must be an integer >= 1, got {self.bits!r}")
        if self.size_class not in SIZE_CLASSES:
            raise InvalidRequestError(
                f"size_class must be one of {SIZE_CLASSES}, got {self.size_class!r}",
                details={"size_class": repr(self.size_class)},
            )
        if (
            not isinstance(self.repeat, int)
            or isinstance(self.repeat, bool)
            or self.repeat < 1
        ):
            raise InvalidRequestError(
                f"repeat must be an integer >= 1, got {self.repeat!r}",
                details={"repeat": repr(self.repeat)},
            )
        if self.seed is not None and not isinstance(self.seed, int):
            raise InvalidRequestError(f"seed must be an integer or null, got {self.seed!r}")

    @property
    def effective_layers(self) -> tuple[LayerSpec, ...]:
        """The layer sequence with the ``repeat`` stacking applied."""
        return self.layers * self.repeat

    # ------------------------------------------------------------------ wire
    def to_dict(self) -> dict[str, Any]:
        data = {
            "name": self.name,
            "input_shape": list(self.input_shape),
            "layers": [layer.to_dict() for layer in self.layers],
            "bits": self.bits,
            "size_class": self.size_class,
            "seed": self.seed,
        }
        # emitted only when set, so pre-knob payloads (and spec ids)
        # are byte-for-byte unchanged
        if self.repeat != 1:
            data["repeat"] = self.repeat
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ModelSpec":
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise InvalidRequestError(
                f"unknown field(s) {unknown} in ModelSpec payload",
                details={"unknown_fields": unknown},
            )
        for required in ("name", "input_shape", "layers"):
            if required not in data:
                raise InvalidRequestError(
                    f"ModelSpec payload is missing {required!r}"
                )
        return cls(
            name=str(data["name"]),
            input_shape=tuple(data["input_shape"]),
            layers=tuple(LayerSpec.from_dict(e) for e in data["layers"]),
            bits=int(data.get("bits", 6)),
            size_class=str(data.get("size_class", "small")),
            repeat=int(data.get("repeat", 1)),
            seed=data.get("seed"),
        )

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, payload: str | bytes) -> "ModelSpec":
        try:
            data = json.loads(payload)
        except (TypeError, ValueError) as exc:
            raise InvalidRequestError(
                f"ModelSpec payload is not valid JSON: {exc}"
            ) from exc
        if not isinstance(data, dict):
            raise InvalidRequestError(
                f"ModelSpec payload must be a JSON object, got {type(data).__name__}"
            )
        return cls.from_dict(data)

    def spec_id(self) -> str:
        """Content-addressed short id of this spec (name excluded, so a
        renamed corpus copy keeps its identity)."""
        data = self.to_dict()
        data.pop("name")
        data.pop("seed")
        canonical = json.dumps(data, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:12]


# --------------------------------------------------------------------------
# spec -> computational graph
# --------------------------------------------------------------------------

def _odd_clamp(kernel: int, cap: int) -> int:
    """The largest odd kernel <= min(kernel, cap), at least 1 (odd kernels
    with ``padding=k//2`` preserve spatial dims at stride 1, which keeps
    residual/concat branch shapes compatible)."""
    k = max(1, min(kernel, cap))
    return k if k % 2 else k - 1


class _ShapeWalk:
    """Tracks the current tensor shape while building / estimating."""

    def __init__(self, input_shape: tuple[int, ...]):
        if len(input_shape) == 1:
            self.flat: int | None = input_shape[0]
            self.c = self.h = self.w = 0
        else:
            self.flat = None
            self.c, self.h, self.w = input_shape

    @property
    def is_flat(self) -> bool:
        return self.flat is not None

    @property
    def size(self) -> int:
        return self.flat if self.flat is not None else self.c * self.h * self.w

    def flatten(self) -> None:
        self.flat = self.size

    def pool(self, kernel: int) -> int | None:
        """Apply pooling if legal; returns the clamped kernel or None."""
        if self.is_flat or min(self.h, self.w) < 2:
            return None
        k = min(max(kernel, 2), self.h, self.w)
        self.h = (self.h - k) // k + 1
        self.w = (self.w - k) // k + 1
        return k


def build_graph(spec: ModelSpec) -> ComputationalGraph:
    """Lower a spec to a validated computational graph.

    Total over valid specs: illegal requests are normalised (clamped
    kernels, implicit flatten, skipped pooling) rather than rejected, so
    any spec the generator or the shrinker produces builds.
    """
    builder = GraphBuilder(spec.name, spec.input_shape, bits=spec.bits)
    walk = _ShapeWalk(spec.input_shape)
    layers = spec.effective_layers
    last = len(layers) - 1
    for index, layer in enumerate(layers):
        if layer.kind == "conv":
            if walk.is_flat:
                # convs after the flatten point degrade to dense layers so
                # shrunk specs never become unbuildable
                builder.dense(layer.width, relu=True)
                walk.flat = layer.width
            else:
                k = _odd_clamp(layer.kernel or 3, min(walk.h, walk.w))
                builder.conv(layer.width, k, padding=k // 2, relu=True)
                walk.c = layer.width
        elif layer.kind == "pool":
            k = walk.pool(layer.kernel or 2)
            if k is not None:
                builder.maxpool(k)
        elif layer.kind == "dense":
            if not walk.is_flat:
                builder.flatten()
                walk.flatten()
            builder.dense(layer.width, relu=index != last)
            walk.flat = layer.width
        elif layer.kind == "branch_add":
            tap = builder.checkpoint()
            if walk.is_flat:
                builder.dense(walk.flat, relu=False, from_=tap)
            else:
                k = _odd_clamp(layer.kernel or 3, min(walk.h, walk.w))
                builder.conv(walk.c, k, padding=k // 2, relu=True, from_=tap)
            builder.add(tap, builder.current)
        elif layer.kind == "concat":
            tap = builder.checkpoint()
            if walk.is_flat:
                builder.dense(layer.width, from_=tap)
                left = builder.current
                builder.dense(layer.width, from_=tap)
                builder.concat([left, builder.current])
                walk.flat = 2 * layer.width
            else:
                builder.conv(layer.width, 1, from_=tap)
                left = builder.current
                k = _odd_clamp(layer.kernel or 3, min(walk.h, walk.w))
                builder.conv(layer.width, k, padding=k // 2, from_=tap)
                builder.concat([left, builder.current])
                walk.c = 2 * layer.width
    return builder.build()


def estimate_pes(spec: ModelSpec) -> int:
    """Rough minimum-PE estimate of a spec at duplication degree 1.

    Mirrors the mapper's per-weight-group tiling
    (``ceil(rows/256) * ceil(cols/256)``) over the same shape walk
    :func:`build_graph` performs; pooling/elementwise lowering overhead is
    approximated with one PE of slack per layer.  The estimate steers the
    generator's size classes — the authoritative capacity decision stays
    with the mapper's pre-flight.
    """
    walk = _ShapeWalk(spec.input_shape)
    total = 0

    def tiles(rows: int, cols: int) -> int:
        return math.ceil(rows / _PE_ROWS) * math.ceil(cols / _PE_COLS)

    for layer in spec.effective_layers:
        if layer.kind == "conv":
            if walk.is_flat:
                total += tiles(walk.size, layer.width)
                walk.flat = layer.width
            else:
                k = _odd_clamp(layer.kernel or 3, min(walk.h, walk.w))
                total += tiles(k * k * walk.c, layer.width)
                walk.c = layer.width
        elif layer.kind == "pool":
            if walk.pool(layer.kernel or 2) is not None:
                total += 1
        elif layer.kind == "dense":
            size = walk.size
            walk.flatten()
            total += tiles(size, layer.width)
            walk.flat = layer.width
        elif layer.kind == "branch_add":
            if walk.is_flat:
                total += tiles(walk.size, walk.size)
            else:
                k = _odd_clamp(layer.kernel or 3, min(walk.h, walk.w))
                total += tiles(k * k * walk.c, walk.c)
            total += 1
        elif layer.kind == "concat":
            if walk.is_flat:
                total += 2 * tiles(walk.size, layer.width)
                walk.flat = 2 * layer.width
            else:
                k = _odd_clamp(layer.kernel or 3, min(walk.h, walk.w))
                total += tiles(walk.c, layer.width)
                total += tiles(k * k * walk.c, layer.width)
                walk.c = 2 * layer.width
    return total


# --------------------------------------------------------------------------
# generation
# --------------------------------------------------------------------------

def size_class_for_index(index: int) -> str:
    """The default mixed-campaign rotation: mostly small models, with a
    near-capacity and an over-capacity model in every block of ten."""
    position = index % 10
    if position == 6:
        return "near"
    if position == 9:
        return "over"
    return "small"


def _small_spec(rng: random.Random) -> tuple[tuple[int, ...], list[LayerSpec]]:
    if rng.random() < 0.7:
        side = rng.choice((8, 12, 16))
        input_shape: tuple[int, ...] = (rng.choice((1, 3)), side, side)
        flat = False
    else:
        input_shape = (rng.choice((32, 64, 128, 256)),)
        flat = True
    layers: list[LayerSpec] = []
    depth = rng.randint(2, 7)
    while len(layers) < depth:
        if flat:
            kind = rng.choices(
                ("dense", "branch_add", "concat"), weights=(6, 2, 2)
            )[0]
        else:
            kind = rng.choices(
                ("conv", "pool", "dense", "branch_add", "concat"),
                weights=(35, 15, 15, 15, 20),
            )[0]
        if kind == "conv":
            layers.append(
                LayerSpec("conv", width=rng.choice((4, 8, 16)), kernel=rng.choice((1, 3, 5)))
            )
        elif kind == "pool":
            layers.append(LayerSpec("pool", kernel=2))
        elif kind == "dense":
            layers.append(LayerSpec("dense", width=rng.choice((16, 32, 64))))
            flat = True
        elif kind == "branch_add":
            layers.append(LayerSpec("branch_add", kernel=3))
        else:
            layers.append(LayerSpec("concat", width=rng.choice((4, 8)), kernel=3))
    layers.append(LayerSpec("dense", width=rng.choice((10, 16))))
    return input_shape, layers


def _capacity_spec(
    rng: random.Random, lo: int, hi: int, name: str, size_class: str, seed: int
) -> ModelSpec:
    """A dense stack whose estimated PE count lands in ``[lo, hi]``.

    Each individual layer stays well under one chip's capacity so the
    partitioner can always shard the model (``"auto"`` must succeed on
    over-capacity specs).
    """
    input_shape = (rng.choice((1024, 2048)),)
    layers: list[LayerSpec] = []

    def estimate(extra: list[LayerSpec]) -> int:
        return estimate_pes(
            ModelSpec(
                name=name,
                input_shape=input_shape,
                layers=tuple(layers + extra),
                size_class=size_class,
                seed=seed,
            )
        )

    target = rng.randint(lo, hi)
    head = LayerSpec("dense", width=100)
    while estimate([head]) < target:
        # the largest width that keeps the estimate inside the band; when
        # even the smallest overshoots ``hi`` the stack is already within
        # one increment of it, which the class bands comfortably absorb
        for width in (rng.choice((6144, 4096)), 4096, 2048):
            candidate = LayerSpec("dense", width=width)
            if estimate([candidate, head]) <= hi:
                layers.append(candidate)
                break
        else:
            break
    layers.append(head)
    return ModelSpec(
        name=name,
        input_shape=input_shape,
        layers=tuple(layers),
        size_class=size_class,
        seed=seed,
    )


def generate_spec(seed: int, index: int, size_class: str | None = None) -> ModelSpec:
    """Deterministically generate the ``index``-th spec of a campaign."""
    if size_class is not None and size_class not in SIZE_CLASSES:
        raise InvalidRequestError(
            f"size_class must be one of {SIZE_CLASSES} or None, got {size_class!r}"
        )
    resolved = size_class or size_class_for_index(index)
    rng = random.Random(derive_seed(seed, f"fuzz-spec-{index}-{resolved}"))
    name = f"fuzz-{seed}-{index}"
    if resolved == "small":
        input_shape, layers = _small_spec(rng)
        return ModelSpec(
            name=name,
            input_shape=input_shape,
            layers=tuple(layers),
            bits=rng.choice((4, 6, 8)),
            size_class="small",
            # repeated-block models exercise the subgraph dedup cache's
            # within-model hits; most specs stay single-block
            repeat=rng.choice((1, 1, 1, 2, 3)),
            seed=seed,
        )
    if resolved == "near":
        # stay comfortably under the 2048-PE chip so ``num_chips=1`` fits
        # even though the mapper's exact count runs a little above the
        # estimate (lowered pooling / elementwise groups)
        return _capacity_spec(rng, 1200, 1800, name, "near", seed)
    return _capacity_spec(rng, 2400, 4000, name, "over", seed)


def generate_specs(
    n: int, seed: int, size_class: str | None = None
) -> list[ModelSpec]:
    """The first ``n`` specs of campaign ``seed`` (``size_class=None`` uses
    the mixed rotation of :func:`size_class_for_index`)."""
    if n < 0:
        raise InvalidRequestError(f"model count must be >= 0, got {n}")
    return [generate_spec(seed, index, size_class) for index in range(n)]
