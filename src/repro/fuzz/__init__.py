"""Differential fuzzing for the FPSA toolchain.

:mod:`.generate` turns a seed into valid random :class:`ModelSpec`\\ s,
:mod:`.oracle` compiles each spec across a configuration lattice and
diffs the outcomes, :mod:`.shrink` delta-debugs failures to minimal
reproducers, and :mod:`.campaign` drives whole campaigns (the engine
behind ``repro fuzz``).
"""

from .campaign import (
    CampaignFinding,
    CampaignReport,
    default_campaign_seed,
    run_campaign,
)
from .generate import (
    LAYER_KINDS,
    SIZE_CLASSES,
    LayerSpec,
    ModelSpec,
    build_graph,
    estimate_pes,
    generate_spec,
    generate_specs,
)
from .oracle import CONFIG_GROUPS, Finding, Outcome, SpecCheck, check_spec, compile_spec
from .shrink import ShrinkResult, shrink, spec_size

__all__ = [
    "LAYER_KINDS",
    "SIZE_CLASSES",
    "CONFIG_GROUPS",
    "LayerSpec",
    "ModelSpec",
    "build_graph",
    "estimate_pes",
    "generate_spec",
    "generate_specs",
    "Outcome",
    "Finding",
    "SpecCheck",
    "check_spec",
    "compile_spec",
    "ShrinkResult",
    "shrink",
    "spec_size",
    "CampaignFinding",
    "CampaignReport",
    "default_campaign_seed",
    "run_campaign",
]
