"""Delta-debugging for failing :class:`ModelSpec`\\ s.

Given a spec and a predicate ``fails(spec) -> bool`` (True while the
failure reproduces), :func:`shrink` greedily applies size-reducing
mutations — drop contiguous layer chunks, drop single layers, halve
widths, collapse kernels, shrink the input, lower the bit width — and
keeps any candidate that still fails.  Every mutation is strictly
size-decreasing under :func:`spec_size`, so the result is never larger
than the input and the loop terminates without a fuel counter (though
``max_evaluations`` bounds predicate cost for expensive oracles).

The output is 1-minimal with respect to the mutation set: no single
remaining mutation preserves the failure.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from ..errors import FPSAError
from .generate import LayerSpec, ModelSpec

__all__ = ["ShrinkResult", "spec_size", "shrink"]


def spec_size(spec: ModelSpec) -> tuple[int, int, int, int]:
    """Lexicographic size of a spec: fewer (effective) layers beat
    narrower layers beat a smaller input beat fewer bits."""
    layers = spec.effective_layers
    return (
        len(layers),
        sum(layer.width + layer.kernel for layer in layers),
        int(math.prod(spec.input_shape)),
        spec.bits,
    )


@dataclass
class ShrinkResult:
    """Outcome of one shrink run."""

    original: ModelSpec
    spec: ModelSpec
    #: accepted mutations, in order ("drop-layers[2:4]", "halve-width[1]", ...)
    steps: list[str] = field(default_factory=list)
    #: predicate invocations spent (including rejected candidates)
    evaluations: int = 0

    def to_dict(self) -> dict[str, Any]:
        return {
            "original_id": self.original.spec_id(),
            "spec": self.spec.to_dict(),
            "spec_id": self.spec.spec_id(),
            "steps": list(self.steps),
            "evaluations": self.evaluations,
        }


def _replace_layers(spec: ModelSpec, layers: list[LayerSpec]) -> ModelSpec | None:
    try:
        return ModelSpec(
            name=spec.name,
            input_shape=spec.input_shape,
            layers=tuple(layers),
            bits=spec.bits,
            size_class=spec.size_class,
            repeat=spec.repeat,
            seed=spec.seed,
        )
    except FPSAError:
        return None


def _candidates(spec: ModelSpec) -> Iterator[tuple[str, ModelSpec]]:
    """Strictly size-decreasing mutations of ``spec``, most aggressive
    first (classic ddmin ordering: big chunks, then single elements, then
    parameter reductions)."""
    layers = list(spec.layers)
    n = len(layers)

    # unroll the repeat knob first: collapsing the whole stacking to one
    # block is the most aggressive reduction available, then halving it
    if spec.repeat > 1:
        for target, step in ((1, "collapse-repeat"), (spec.repeat // 2, "halve-repeat")):
            if 1 <= target < spec.repeat:
                yield step, ModelSpec(
                    name=spec.name,
                    input_shape=spec.input_shape,
                    layers=spec.layers,
                    bits=spec.bits,
                    size_class=spec.size_class,
                    repeat=target,
                    seed=spec.seed,
                )

    # drop contiguous chunks: halves, then quarters, then single layers
    chunk = n // 2
    while chunk >= 1:
        for start in range(0, n - chunk + 1):
            candidate = _replace_layers(spec, layers[:start] + layers[start + chunk :])
            if candidate is not None:
                yield f"drop-layers[{start}:{start + chunk}]", candidate
        chunk = chunk // 2 if chunk > 1 else 0

    # halve widths
    for i, layer in enumerate(layers):
        if layer.width > 1:
            mutated = LayerSpec(layer.kind, width=max(1, layer.width // 2), kernel=layer.kernel)
            candidate = _replace_layers(spec, layers[:i] + [mutated] + layers[i + 1 :])
            if candidate is not None:
                yield f"halve-width[{i}]", candidate

    # collapse kernels to 1x1
    for i, layer in enumerate(layers):
        if layer.kernel > 1:
            mutated = LayerSpec(layer.kind, width=layer.width, kernel=1)
            candidate = _replace_layers(spec, layers[:i] + [mutated] + layers[i + 1 :])
            if candidate is not None:
                yield f"collapse-kernel[{i}]", candidate

    # shrink the input: halve spatial sides / feature width, drop channels
    shape = spec.input_shape
    for i, dim in enumerate(shape):
        if dim > 1:
            smaller = list(shape)
            smaller[i] = max(1, dim // 2)
            try:
                yield f"shrink-input[{i}]", ModelSpec(
                    name=spec.name,
                    input_shape=tuple(smaller),
                    layers=spec.layers,
                    bits=spec.bits,
                    size_class=spec.size_class,
                    repeat=spec.repeat,
                    seed=spec.seed,
                )
            except FPSAError:
                pass

    # lower the weight precision
    if spec.bits > 4:
        yield "lower-bits", ModelSpec(
            name=spec.name,
            input_shape=spec.input_shape,
            layers=spec.layers,
            bits=4,
            size_class=spec.size_class,
            repeat=spec.repeat,
            seed=spec.seed,
        )


def shrink(
    spec: ModelSpec,
    fails: Callable[[ModelSpec], bool],
    *,
    max_evaluations: int = 500,
) -> ShrinkResult:
    """Reduce ``spec`` to a minimal spec for which ``fails`` still holds.

    ``fails(spec)`` must be True for the input itself (the caller has a
    reproducing failure in hand); it is never re-evaluated on the input.
    Candidate predicate errors count as "does not fail" (the candidate is
    rejected), so a flaky predicate can only under-shrink, never lose the
    reproducer.
    """
    result = ShrinkResult(original=spec, spec=spec)
    improved = True
    while improved and result.evaluations < max_evaluations:
        improved = False
        current_size = spec_size(result.spec)
        for step, candidate in _candidates(result.spec):
            if spec_size(candidate) >= current_size:
                continue  # paranoia: only ever walk downhill
            if result.evaluations >= max_evaluations:
                break
            result.evaluations += 1
            try:
                still_fails = fails(candidate)
            except Exception:  # noqa: BLE001 - reject, keep the reproducer
                still_fails = False
            if still_fails:
                result.spec = candidate
                result.steps.append(step)
                improved = True
                break  # restart candidate generation from the smaller spec
    return result
