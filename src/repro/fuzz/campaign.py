"""Fuzz-campaign driver: generate N specs, run each through the
differential oracle, shrink whatever fails, and emit a JSON report.

The campaign seed defaults from the active Hypothesis profile (the same
``HYPOTHESIS_PROFILE`` knob ``tests/conftest.py`` registers): the
derandomized ``ci`` profile pins seed 0 so a CI fuzz run is reproducible
from the log line alone, while ``dev`` draws a fresh seed per campaign.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from .generate import ModelSpec, generate_spec
from .oracle import CONFIG_GROUPS, SpecCheck, check_spec
from .shrink import ShrinkResult, shrink

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..arch.params import FPSAConfig

__all__ = [
    "PROFILE_ENV",
    "CampaignFinding",
    "CampaignReport",
    "default_campaign_seed",
    "run_campaign",
]

PROFILE_ENV = "HYPOTHESIS_PROFILE"


def default_campaign_seed() -> int:
    """Campaign seed implied by the Hypothesis profile: the derandomized
    ``ci`` profile (the default) pins 0; anything else draws fresh."""
    profile = os.environ.get(PROFILE_ENV, "ci")
    if profile == "ci":
        return 0
    return random.SystemRandom().randrange(2**32)


@dataclass
class CampaignFinding:
    """One failing spec, with every lattice disagreement it produced and
    (when shrinking ran) its minimal reproducer."""

    spec: ModelSpec
    index: int
    findings: list[dict[str, Any]]
    shrunk: ShrinkResult | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "index": self.index,
            "spec": self.spec.to_dict(),
            "spec_id": self.spec.spec_id(),
            "findings": list(self.findings),
            "shrunk": self.shrunk.to_dict() if self.shrunk is not None else None,
        }


@dataclass
class CampaignReport:
    """Everything one campaign did, JSON-serializable for ``--json``."""

    seed: int
    models: int
    size_class: str | None
    specs: list[str] = field(default_factory=list)
    compiles: int = 0
    configs_diffed: int = 0
    failures: list[CampaignFinding] = field(default_factory=list)
    wall_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_dict(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "models": self.models,
            "size_class": self.size_class,
            "specs": list(self.specs),
            "compiles": self.compiles,
            "configs_diffed": self.configs_diffed,
            "findings": [f.to_dict() for f in self.failures],
            "wall_seconds": self.wall_seconds,
            "ok": self.ok,
        }


def _groups_of(check: SpecCheck) -> tuple[str, ...]:
    """The lattice groups implicated by a failed check (the shrinker
    re-runs only these, which keeps predicate evaluation cheap)."""
    groups = set()
    for finding in check.findings:
        name = finding.config
        if name.startswith("pnr"):
            groups.add("pnr")
        elif name.startswith("shared"):
            groups.add("shared")
        elif name.startswith(("chips", "auto")):
            groups.add("chips")
        elif name in ("warm", "repeat"):
            groups.add(name)
        else:  # pragma: no cover - future config names: re-run everything
            groups.update(CONFIG_GROUPS)
    return tuple(g for g in CONFIG_GROUPS if g in groups)


def _shrink_predicate(
    report: CampaignReport,
    groups: tuple[str, ...],
    config: "FPSAConfig | None",
    pnr_jobs: int,
) -> Callable[[ModelSpec], bool]:
    def still_fails(candidate: ModelSpec) -> bool:
        inner = check_spec(candidate, config=config, pnr_jobs=pnr_jobs, subset=groups)
        report.compiles += inner.compiles
        report.configs_diffed += len(inner.configs)
        return not inner.ok

    return still_fails


def run_campaign(
    models: int = 50,
    seed: int | None = None,
    *,
    size_class: str | None = None,
    shrink_failures: bool = False,
    pnr_jobs: int = 4,
    config: "FPSAConfig | None" = None,
    max_shrink_evaluations: int = 60,
    log: Callable[[str], None] | None = None,
) -> CampaignReport:
    """Run one differential-fuzzing campaign.

    Never raises for oracle findings — they land in the report, whose
    ``ok`` flag (and the CLI exit code built on it) carries the verdict.
    """
    if seed is None:
        seed = default_campaign_seed()

    def say(msg: str) -> None:
        if log is not None:
            log(msg)
    report = CampaignReport(seed=seed, models=models, size_class=size_class)
    started = time.perf_counter()
    say(f"fuzz campaign: models={models} seed={seed} "
        f"size_class={size_class or 'mixed'}")
    for index in range(models):
        spec = generate_spec(seed, index, size_class=size_class)
        report.specs.append(spec.spec_id())
        check = check_spec(spec, config=config, pnr_jobs=pnr_jobs)
        report.compiles += check.compiles
        report.configs_diffed += len(check.configs)
        if check.ok:
            continue
        say(f"  model {index} ({spec.spec_id()}): "
            f"{len(check.findings)} finding(s)")
        shrunk: ShrinkResult | None = None
        if shrink_failures:
            still_fails = _shrink_predicate(
                report, _groups_of(check), config, pnr_jobs
            )
            shrunk = shrink(
                spec, still_fails, max_evaluations=max_shrink_evaluations
            )
            say(f"    shrunk {len(spec.layers)} -> "
                f"{len(shrunk.spec.layers)} layer(s) "
                f"in {shrunk.evaluations} evaluation(s)")
        report.failures.append(
            CampaignFinding(
                spec=spec,
                index=index,
                findings=[f.to_dict() for f in check.findings],
                shrunk=shrunk,
            )
        )
    report.wall_seconds = time.perf_counter() - started
    say(f"fuzz campaign done: {models} model(s), {report.compiles} compile(s), "
        f"{len(report.failures)} failing spec(s), {report.wall_seconds:.1f}s")
    return report
