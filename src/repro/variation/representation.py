"""The splice-versus-add weight representation analysis (Section 7.2).

Both methods build one logical weight from several physical cells:

* **splice** — each cell stores a different bit-slice; the composed value is
  ``sum_i 2**(b*i) * c_i``.  Precision grows with the cell count but the
  normalized deviation stays essentially at the single-cell value because
  the most-significant cell dominates the error.
* **add** — all cells store the same value and their conductances are
  summed with equal coefficients; by the Cauchy bound the normalized
  deviation shrinks by ``sqrt(n)``, at the cost of slower precision growth
  (``n*(L-1)+1`` levels from ``n`` cells of ``L`` levels).

These closed forms drive Figure 9; :mod:`repro.variation.montecarlo`
validates them against the numeric device model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..arch.reram import ReRAMCellModel, make_composition
from ..errors import InvalidRequestError

__all__ = [
    "RepresentationPoint",
    "normalized_deviation",
    "effective_weight_levels",
    "effective_weight_bits",
    "representation_sweep",
]


@dataclass(frozen=True)
class RepresentationPoint:
    """One (method, #cells) point of the representation study."""

    method: str
    n_cells: int
    normalized_deviation: float
    effective_levels: int
    effective_bits: float


def normalized_deviation(method: str, n_cells: int, cell: ReRAMCellModel | None = None) -> float:
    """Normalized deviation (std / value range) of the composed weight."""
    cell = cell if cell is not None else ReRAMCellModel()
    return make_composition(method, cell, n_cells).normalized_deviation()


def effective_weight_levels(method: str, n_cells: int, cell: ReRAMCellModel | None = None) -> int:
    """Number of distinct weight values the composition can represent."""
    cell = cell if cell is not None else ReRAMCellModel()
    if n_cells <= 0:
        raise InvalidRequestError("n_cells must be positive")
    if method == "splice":
        return cell.levels**n_cells
    if method == "add":
        return n_cells * (cell.levels - 1) + 1
    raise InvalidRequestError(f"unknown method {method!r}")


def effective_weight_bits(method: str, n_cells: int, cell: ReRAMCellModel | None = None) -> float:
    """Equivalent bit-width of the composed weight."""
    return math.log2(effective_weight_levels(method, n_cells, cell))


def representation_sweep(
    method: str,
    n_cells_list: list[int],
    cell: ReRAMCellModel | None = None,
) -> list[RepresentationPoint]:
    """Sweep the cell count for one composition method."""
    cell = cell if cell is not None else ReRAMCellModel()
    points = []
    for n in n_cells_list:
        points.append(
            RepresentationPoint(
                method=method,
                n_cells=n,
                normalized_deviation=normalized_deviation(method, n, cell),
                effective_levels=effective_weight_levels(method, n, cell),
                effective_bits=effective_weight_bits(method, n, cell),
            )
        )
    return points
