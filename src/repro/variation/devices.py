"""Measured ReRAM device-variation data.

The paper derives its variation numbers from fabricated HfOx devices
(Yao et al., "Face classification using electronic synapses", Nature
Communications 2017): multi-level cells programmed to 16 levels show a
combined programming + cycle-to-cycle conductance deviation of a few
percent of the full conductance range.  The constant below is the
calibration point used throughout the variation study; EXPERIMENTS.md
records it as a substitution for the authors' raw device data.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..arch.reram import ReRAMCellModel

__all__ = ["MeasuredDevice", "YAO2017_DEVICE", "measured_cell"]


@dataclass(frozen=True)
class MeasuredDevice:
    """Summary statistics of a fabricated multi-level ReRAM device."""

    name: str
    bits: int
    #: standard deviation of the programmed conductance as a fraction of the
    #: full conductance range.
    sigma_fraction: float
    endurance_writes: float
    citation: str

    def cell_model(self) -> ReRAMCellModel:
        """A :class:`ReRAMCellModel` with this device's variation."""
        return ReRAMCellModel(bits=self.bits, sigma=self.sigma_fraction)


YAO2017_DEVICE = MeasuredDevice(
    name="HfOx 1T1R (Yao et al. 2017)",
    bits=4,
    sigma_fraction=0.04,
    endurance_writes=1e12,
    citation="Nature Communications 8, 2017",
)


def measured_cell() -> ReRAMCellModel:
    """The default measured 4-bit cell used by the Figure 9 experiments."""
    return YAO2017_DEVICE.cell_model()
