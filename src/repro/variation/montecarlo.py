"""Monte-Carlo accuracy study on the numeric device model.

This complements the closed-form surrogate of
:mod:`repro.variation.accuracy` with a direct numerical experiment that
exercises the real crossbar programming path
(:class:`repro.arch.reram.ReRAMCrossbar`): a small prototype (matched-filter)
classifier on synthetic Gaussian-cluster data is deployed with quantised,
variation-perturbed weights, and its accuracy is compared against the
full-precision version for the splice and add representations.

The synthetic task stands in for the paper's ImageNet evaluation (a dataset
we cannot ship); what matters for Figure 9 is the *relative* behaviour of
the two representations, which is preserved because both see exactly the
same weight matrices and the same device model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..arch.reram import ReRAMCellModel, make_composition
from ..errors import InvalidRequestError

__all__ = ["SyntheticTask", "MonteCarloResult", "run_montecarlo"]


@dataclass(frozen=True)
class SyntheticTask:
    """A linearly separable synthetic classification task."""

    n_classes: int = 10
    n_features: int = 32
    n_samples: int = 512
    cluster_spread: float = 0.35
    seed: int = 7

    def generate(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Returns (centroids, samples, labels)."""
        rng = np.random.default_rng(self.seed)
        centroids = rng.normal(0.0, 1.0, size=(self.n_classes, self.n_features))
        centroids /= np.linalg.norm(centroids, axis=1, keepdims=True)
        labels = rng.integers(0, self.n_classes, size=self.n_samples)
        noise = rng.normal(0.0, self.cluster_spread, size=(self.n_samples, self.n_features))
        samples = centroids[labels] + noise
        return centroids, samples, labels


@dataclass(frozen=True)
class MonteCarloResult:
    """Accuracy of one (method, n_cells) configuration."""

    method: str
    n_cells: int
    clean_accuracy: float
    noisy_accuracy: float
    trials: int

    @property
    def normalized_accuracy(self) -> float:
        if self.clean_accuracy <= 0:
            return 0.0
        return min(1.0, self.noisy_accuracy / self.clean_accuracy)


def _classify(weights: np.ndarray, samples: np.ndarray) -> np.ndarray:
    """Matched-filter classification: argmax over class scores."""
    scores = samples @ weights
    return np.argmax(scores, axis=1)


def run_montecarlo(
    method: str,
    n_cells: int,
    cell: ReRAMCellModel | None = None,
    task: SyntheticTask | None = None,
    trials: int = 5,
    seed: int = 1234,
) -> MonteCarloResult:
    """Measure the accuracy retained by one weight representation.

    Each trial re-programs the crossbar with fresh variation samples; the
    reported noisy accuracy is the mean over trials.

    All trials are evaluated in one vectorized batch: the per-cell
    variation of every trial comes from a single rng draw of shape
    ``(trials, 2, ...)`` and the per-trial classifications from one
    einsum, instead of constructing a ``ReRAMCrossbar`` per trial in a
    Python loop.  Because numpy ``Generator`` normals are a single stream
    (one draw of ``n`` values equals ``n`` sequential draws), the batched
    draw consumes the rng exactly like the former per-trial loop of
    positive-then-negative programming — results are bit-identical for
    the same seed (locked in by
    ``tests/variation/test_variation.py::test_vectorized_matches_per_trial_crossbars``).
    """
    if trials <= 0:
        raise InvalidRequestError("trials must be positive")
    cell = cell if cell is not None else ReRAMCellModel()
    task = task if task is not None else SyntheticTask()

    centroids, samples, labels = task.generate()
    weights = centroids.T  # features x classes
    clean_predictions = _classify(weights, samples)
    clean_accuracy = float(np.mean(clean_predictions == labels))

    # the signed-weight decomposition the ReRAMCrossbar performs, done once
    # (it is identical for every trial): positive/negative column pair on
    # the normalized [0, 1] weight scale
    composition = make_composition(method, cell, n_cells)
    scale = np.max(np.abs(weights))
    weight_scale = float(scale) if scale > 0 else 1.0
    normalized = weights / weight_scale
    fractions = np.stack(
        [
            composition.cell_fractions(np.clip(normalized, 0.0, None)),
            composition.cell_fractions(np.clip(-normalized, 0.0, None)),
        ]
    )  # (2, features, classes, n_cells)
    target = cell.g_min + cell.quantize_fraction(fractions) * cell.g_range

    rng = np.random.default_rng(seed)
    if cell.sigma > 0.0:
        # one draw for every trial's positive-then-negative programming, in
        # the exact stream order of per-trial sequential draws; the noise
        # buffer is then reused in place for programming + normalization
        # (it is by far the largest array of the experiment)
        programmed = rng.normal(
            0.0, cell.sigma_conductance, size=(trials, *target.shape)
        )
        programmed += target
        np.clip(programmed, 0.0, None, out=programmed)
    else:
        programmed = np.broadcast_to(target, (trials, *target.shape)).copy()
    programmed -= cell.g_min
    programmed /= cell.g_range
    composed = composition.compose(programmed)
    # (trials, 2, features, classes) -> signed effective weights per trial
    effective = (composed[:, 0] - composed[:, 1]) * weight_scale

    # one batched matched-filter classification over all trials: matmul
    # broadcasts over the trial axis (one BLAS GEMM per trial, no Python
    # loop, no per-trial crossbar objects)
    scores = samples @ effective  # (trials, samples, classes)
    noisy_predictions = np.argmax(scores, axis=2)  # (trials, samples)
    accuracies = np.mean(noisy_predictions == labels[None, :], axis=1)
    return MonteCarloResult(
        method=method,
        n_cells=n_cells,
        clean_accuracy=clean_accuracy,
        noisy_accuracy=float(np.mean(accuracies)),
        trials=trials,
    )
