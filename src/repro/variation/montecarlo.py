"""Monte-Carlo accuracy study on the numeric device model.

This complements the closed-form surrogate of
:mod:`repro.variation.accuracy` with a direct numerical experiment that
exercises the real crossbar programming path
(:class:`repro.arch.reram.ReRAMCrossbar`): a small prototype (matched-filter)
classifier on synthetic Gaussian-cluster data is deployed with quantised,
variation-perturbed weights, and its accuracy is compared against the
full-precision version for the splice and add representations.

The synthetic task stands in for the paper's ImageNet evaluation (a dataset
we cannot ship); what matters for Figure 9 is the *relative* behaviour of
the two representations, which is preserved because both see exactly the
same weight matrices and the same device model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..arch.reram import ReRAMCellModel, ReRAMCrossbar

__all__ = ["SyntheticTask", "MonteCarloResult", "run_montecarlo"]


@dataclass(frozen=True)
class SyntheticTask:
    """A linearly separable synthetic classification task."""

    n_classes: int = 10
    n_features: int = 32
    n_samples: int = 512
    cluster_spread: float = 0.35
    seed: int = 7

    def generate(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Returns (centroids, samples, labels)."""
        rng = np.random.default_rng(self.seed)
        centroids = rng.normal(0.0, 1.0, size=(self.n_classes, self.n_features))
        centroids /= np.linalg.norm(centroids, axis=1, keepdims=True)
        labels = rng.integers(0, self.n_classes, size=self.n_samples)
        noise = rng.normal(0.0, self.cluster_spread, size=(self.n_samples, self.n_features))
        samples = centroids[labels] + noise
        return centroids, samples, labels


@dataclass(frozen=True)
class MonteCarloResult:
    """Accuracy of one (method, n_cells) configuration."""

    method: str
    n_cells: int
    clean_accuracy: float
    noisy_accuracy: float
    trials: int

    @property
    def normalized_accuracy(self) -> float:
        if self.clean_accuracy <= 0:
            return 0.0
        return min(1.0, self.noisy_accuracy / self.clean_accuracy)


def _classify(weights: np.ndarray, samples: np.ndarray) -> np.ndarray:
    """Matched-filter classification: argmax over class scores."""
    scores = samples @ weights
    return np.argmax(scores, axis=1)


def run_montecarlo(
    method: str,
    n_cells: int,
    cell: ReRAMCellModel | None = None,
    task: SyntheticTask | None = None,
    trials: int = 5,
    seed: int = 1234,
) -> MonteCarloResult:
    """Measure the accuracy retained by one weight representation.

    Each trial re-programs the crossbar with fresh variation samples; the
    reported noisy accuracy is the mean over trials.
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    cell = cell if cell is not None else ReRAMCellModel()
    task = task if task is not None else SyntheticTask()

    centroids, samples, labels = task.generate()
    weights = centroids.T  # features x classes
    clean_predictions = _classify(weights, samples)
    clean_accuracy = float(np.mean(clean_predictions == labels))

    rng = np.random.default_rng(seed)
    accuracies = []
    for _ in range(trials):
        crossbar = ReRAMCrossbar(
            weights,
            cell=cell,
            composition=method,
            cells_per_weight=n_cells,
            rng=rng,
        )
        noisy_predictions = _classify(crossbar.effective_weights, samples)
        accuracies.append(float(np.mean(noisy_predictions == labels)))
    return MonteCarloResult(
        method=method,
        n_cells=n_cells,
        clean_accuracy=clean_accuracy,
        noisy_accuracy=float(np.mean(accuracies)),
        trials=trials,
    )
