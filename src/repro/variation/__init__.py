"""Device variation and the splice/add weight-representation study."""

from .accuracy import AccuracyModel, AccuracyPoint, accuracy_sweep
from .devices import YAO2017_DEVICE, MeasuredDevice, measured_cell
from .montecarlo import MonteCarloResult, SyntheticTask, run_montecarlo
from .representation import (
    RepresentationPoint,
    effective_weight_bits,
    effective_weight_levels,
    normalized_deviation,
    representation_sweep,
)

__all__ = [
    "MeasuredDevice",
    "YAO2017_DEVICE",
    "measured_cell",
    "RepresentationPoint",
    "normalized_deviation",
    "effective_weight_levels",
    "effective_weight_bits",
    "representation_sweep",
    "AccuracyModel",
    "AccuracyPoint",
    "accuracy_sweep",
    "SyntheticTask",
    "MonteCarloResult",
    "run_montecarlo",
]
