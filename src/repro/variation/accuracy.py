"""Normalized-accuracy surrogate for the Figure 9 study.

The paper measures VGG16's ImageNet accuracy under quantisation and device
variation.  Re-training and evaluating VGG16 is outside the scope of a
performance-model reproduction, so the accuracy is estimated with a
two-factor surrogate calibrated against the figure's published anchor
points:

* a **precision bound**: accuracy lost to representing weights with a
  finite number of levels (the dashed "bound by #levels" lines at 4-8 bits),
* a **variation bound**: accuracy lost to the residual conductance error
  after composition (the "bound by variation" line; PRIME's 2-cell splice
  configuration drops to ~70% of the full-precision accuracy).

The normalized accuracy of a configuration is the minimum of the two
bounds.  The Monte-Carlo study (:mod:`repro.variation.montecarlo`) provides
an independent, purely numerical estimate on a small network that exercises
the real device model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..arch.reram import ReRAMCellModel
from ..errors import InvalidRequestError
from .representation import effective_weight_bits, normalized_deviation

__all__ = [
    "AccuracyModel",
    "AccuracyPoint",
    "accuracy_sweep",
]


@dataclass(frozen=True)
class AccuracyModel:
    """Calibrated surrogate mapping precision/variation to normalized accuracy.

    ``precision_scale`` sets how fast accuracy approaches 1 with more bits
    (anchored so that 4-bit weights retain ~87% and 8-bit weights ~99% of
    the full-precision accuracy); ``variation_scale`` sets how fast accuracy
    degrades with normalized deviation (anchored so that PRIME's ~4%
    single-cell deviation yields ~70%).
    """

    precision_scale: float = 2.0
    variation_scale: float = 223.0

    def precision_bound(self, weight_bits: float) -> float:
        """Normalized accuracy achievable with ``weight_bits`` weight levels."""
        if weight_bits <= 0:
            return 0.0
        return max(0.0, 1.0 - self.precision_scale * 2.0 ** (-weight_bits))

    def variation_bound(self, deviation: float) -> float:
        """Normalized accuracy achievable with the given normalized deviation."""
        if deviation < 0:
            raise InvalidRequestError("deviation must be non-negative")
        return math.exp(-self.variation_scale * deviation**2)

    def normalized_accuracy(self, method: str, n_cells: int, cell: ReRAMCellModel) -> float:
        bits = effective_weight_bits(method, n_cells, cell)
        deviation = normalized_deviation(method, n_cells, cell)
        return min(self.precision_bound(bits), self.variation_bound(deviation))


@dataclass(frozen=True)
class AccuracyPoint:
    """One point of the Figure 9 sweep."""

    method: str
    n_cells: int
    normalized_accuracy: float
    precision_bound: float
    variation_bound: float


def accuracy_sweep(
    method: str,
    n_cells_list: list[int],
    cell: ReRAMCellModel | None = None,
    model: AccuracyModel | None = None,
) -> list[AccuracyPoint]:
    """Sweep the cell count for one method and return accuracy estimates."""
    cell = cell if cell is not None else ReRAMCellModel()
    model = model if model is not None else AccuracyModel()
    points = []
    for n in n_cells_list:
        bits = effective_weight_bits(method, n, cell)
        deviation = normalized_deviation(method, n, cell)
        points.append(
            AccuracyPoint(
                method=method,
                n_cells=n,
                normalized_accuracy=model.normalized_accuracy(method, n, cell),
                precision_bound=model.precision_bound(bits),
                variation_bound=model.variation_bound(deviation),
            )
        )
    return points
