"""Tests of the device-variation study (representation, accuracy, Monte Carlo)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.reram import ReRAMCellModel
from repro.variation.accuracy import AccuracyModel, accuracy_sweep
from repro.variation.devices import YAO2017_DEVICE, measured_cell
from repro.variation.montecarlo import SyntheticTask, run_montecarlo
from repro.variation.representation import (
    effective_weight_bits,
    effective_weight_levels,
    normalized_deviation,
    representation_sweep,
)


class TestDevices:
    def test_measured_cell_properties(self):
        cell = measured_cell()
        assert cell.bits == YAO2017_DEVICE.bits
        assert cell.sigma == pytest.approx(YAO2017_DEVICE.sigma_fraction)

    def test_endurance_documented(self):
        # the paper keeps SRAM for buffers because ReRAM endures ~1e12 writes
        assert YAO2017_DEVICE.endurance_writes == pytest.approx(1e12)


class TestRepresentation:
    def test_effective_levels(self):
        cell = ReRAMCellModel(bits=4)
        assert effective_weight_levels("splice", 2, cell) == 256
        assert effective_weight_levels("add", 2, cell) == 31
        assert effective_weight_levels("add", 8, cell) == 121

    def test_effective_bits_monotone(self):
        cell = ReRAMCellModel(bits=4)
        bits = [effective_weight_bits("add", n, cell) for n in (1, 2, 4, 8, 16)]
        assert bits == sorted(bits)

    def test_splice_deviation_flat_add_shrinks(self):
        cell = measured_cell()
        splice = [normalized_deviation("splice", n, cell) for n in (1, 2, 4, 8)]
        add = [normalized_deviation("add", n, cell) for n in (1, 2, 4, 8)]
        assert max(splice) / min(splice) < 1.1
        assert add[-1] == pytest.approx(add[0] / math.sqrt(8))

    def test_sweep_structure(self):
        points = representation_sweep("add", [1, 2, 4])
        assert [p.n_cells for p in points] == [1, 2, 4]
        assert all(p.method == "add" for p in points)

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            effective_weight_levels("bogus", 2)

    @given(n=st.integers(min_value=1, max_value=32))
    @settings(max_examples=32, deadline=None)
    def test_add_never_worse_than_splice(self, n):
        cell = measured_cell()
        assert normalized_deviation("add", n, cell) <= normalized_deviation(
            "splice", n, cell
        ) * (1 + 1e-9)


class TestAccuracyModel:
    def test_precision_bound_monotone(self):
        model = AccuracyModel()
        values = [model.precision_bound(b) for b in (2, 4, 6, 8, 10)]
        assert values == sorted(values)
        assert values[-1] < 1.0 + 1e-9

    def test_variation_bound_decreasing(self):
        model = AccuracyModel()
        assert model.variation_bound(0.0) == pytest.approx(1.0)
        assert model.variation_bound(0.04) < model.variation_bound(0.01)

    def test_prime_configuration_anchor(self):
        """PRIME's 2-cell splice configuration drops to ~70% of the
        full-precision accuracy (Figure 9)."""
        model = AccuracyModel()
        value = model.normalized_accuracy("splice", 2, measured_cell())
        assert value == pytest.approx(0.70, abs=0.05)

    def test_fpsa_configuration_anchor(self):
        """FPSA's 16-cell add configuration is close to full precision."""
        model = AccuracyModel()
        value = model.normalized_accuracy("add", 16, measured_cell())
        assert value > 0.95

    def test_add_curve_monotone_in_cells(self):
        points = accuracy_sweep("add", [1, 2, 4, 8, 16], measured_cell())
        accuracies = [p.normalized_accuracy for p in points]
        assert accuracies == sorted(accuracies)

    def test_splice_saturates_at_variation_bound(self):
        points = accuracy_sweep("splice", [4, 8, 16], measured_cell())
        for point in points:
            assert point.normalized_accuracy == pytest.approx(point.variation_bound)

    def test_negative_deviation_rejected(self):
        with pytest.raises(ValueError):
            AccuracyModel().variation_bound(-0.1)


class TestMonteCarlo:
    def test_clean_classifier_is_accurate(self):
        result = run_montecarlo("add", 8, trials=1)
        assert result.clean_accuracy > 0.85

    def test_normalized_accuracy_in_range(self):
        result = run_montecarlo("add", 4, trials=2)
        assert 0.0 < result.normalized_accuracy <= 1.0

    def test_add_with_many_cells_beats_single_cell_high_noise(self):
        noisy_cell = ReRAMCellModel(bits=4, sigma=0.15)
        task = SyntheticTask(cluster_spread=0.45)
        single = run_montecarlo("add", 1, cell=noisy_cell, task=task, trials=6, seed=3)
        many = run_montecarlo("add", 16, cell=noisy_cell, task=task, trials=6, seed=3)
        assert many.noisy_accuracy >= single.noisy_accuracy

    def test_trials_validated(self):
        with pytest.raises(ValueError):
            run_montecarlo("add", 4, trials=0)

    def test_synthetic_task_reproducible(self):
        a = SyntheticTask(seed=11).generate()
        b = SyntheticTask(seed=11).generate()
        assert (a[1] == b[1]).all()

    @pytest.mark.parametrize("method", ["splice", "add"])
    @pytest.mark.parametrize("n_cells", [1, 2, 8])
    def test_vectorized_matches_per_trial_crossbars(self, method, n_cells):
        """The batched implementation must be *bit-identical* to the former
        per-trial loop: same rng stream order (positive then negative per
        trial), same arithmetic, same mean."""
        import numpy as np

        from repro.arch.reram import ReRAMCrossbar
        from repro.variation.montecarlo import _classify

        cell = ReRAMCellModel()
        task = SyntheticTask()
        trials, seed = 7, 42

        centroids, samples, labels = task.generate()
        weights = centroids.T
        rng = np.random.default_rng(seed)
        accuracies = []
        for _ in range(trials):
            crossbar = ReRAMCrossbar(
                weights,
                cell=cell,
                composition=method,
                cells_per_weight=n_cells,
                rng=rng,
            )
            predictions = _classify(crossbar.effective_weights, samples)
            accuracies.append(float(np.mean(predictions == labels)))
        loop_accuracy = float(np.mean(accuracies))

        result = run_montecarlo(
            method, n_cells, cell=cell, task=task, trials=trials, seed=seed
        )
        assert result.noisy_accuracy == loop_accuracy  # exact, not approx

    def test_vectorized_ideal_cells(self):
        """sigma = 0 draws nothing from the rng and stays deterministic."""
        cell = ReRAMCellModel(sigma=0.0)
        a = run_montecarlo("add", 4, cell=cell, trials=3, seed=1)
        b = run_montecarlo("add", 4, cell=cell, trials=3, seed=2)
        assert a.noisy_accuracy == b.noisy_accuracy
