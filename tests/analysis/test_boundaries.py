"""Verification at the rehydration boundaries (shared cache, artifact store)
and end-to-end through a verified compile.

Pickled/JSON state is restored without ever running ``__post_init__``
validation, so these boundaries are where a corrupt artifact must surface —
as a pinpointed :class:`VerificationError`, not as a crash three passes
downstream.
"""

import pickle

import pytest

from repro.core.compiler import FPSACompiler
from repro.core.shared_cache import SharedStageCache
from repro.errors import VerificationError
from repro.service import ArtifactStore, CompileRequest, serve_request

KEY = "a" * 64


@pytest.fixture
def cache(tmp_path):
    return SharedStageCache(str(tmp_path), verify=True)


def corrupt_entry(cache, key):
    """Rewrite the stored pickle as a *valid* pickle of an *invalid* artifact.

    Byte-level corruption only exercises the unpickle-failure path (counted
    as a miss); the verifiers exist for the nastier case of a well-formed
    pickle whose contents violate the IR invariants.
    """
    path = cache._path(key)
    with open(path, "rb") as handle:
        artifacts = pickle.load(handle)
    group = next(iter(artifacts["coreops"].groups()))
    object.__setattr__(group, "density", 0.0)  # invariant: density in (0, 1]
    with open(path, "wb") as handle:
        pickle.dump(artifacts, handle, protocol=pickle.HIGHEST_PROTOCOL)
    return path


class TestSharedCacheVerification:
    def test_valid_entries_pass_verification(self, cache, mlp_coreops):
        cache.put(KEY, {"coreops": mlp_coreops})
        loaded = cache.get(KEY)
        assert set(loaded) == {"coreops"}
        assert cache.stats.hits == 1
        assert cache.stats.errors == 0

    def test_corrupt_entry_raises_pinpointed_error(self, cache, mlp_coreops, tmp_path):
        import os

        cache.put(KEY, {"coreops": mlp_coreops})
        path = corrupt_entry(cache, KEY)
        with pytest.raises(VerificationError) as excinfo:
            cache.get(KEY)
        error = excinfo.value
        assert error.stage == "synthesis"
        assert error.invariant == "weight-group-consistency"
        assert error.ids  # names the offending group(s)
        # the poisoned entry is dropped so the next compile recomputes
        assert not os.path.exists(path)
        assert KEY not in cache
        assert cache.stats.errors == 1
        assert cache.stats.misses == 1

    def test_non_dict_entry_fails_shape_check(self, cache):
        path = cache._path(KEY)
        import os

        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "wb") as handle:
            pickle.dump([1, 2, 3], handle)
        with pytest.raises(VerificationError) as excinfo:
            cache.get(KEY)
        assert excinfo.value.stage == "shared-cache"
        assert excinfo.value.invariant == "entry-shape"
        assert KEY in excinfo.value.ids

    def test_verification_off_loads_the_corrupt_entry(self, tmp_path, mlp_coreops):
        # without the opt-in, the shared tier stays a pure accelerator:
        # a well-formed pickle loads as a hit, invariants unchecked
        cache = SharedStageCache(str(tmp_path))
        cache.put(KEY, {"coreops": mlp_coreops})
        corrupt_entry(cache, KEY)
        assert cache.get(KEY) is not None
        assert cache.stats.hits == 1

    def test_env_variable_enables_verification(self, tmp_path, mlp_coreops, monkeypatch):
        cache = SharedStageCache(str(tmp_path))  # verify=None: defer to env
        cache.put(KEY, {"coreops": mlp_coreops})
        corrupt_entry(cache, KEY)
        monkeypatch.setenv("REPRO_VERIFY", "1")
        with pytest.raises(VerificationError):
            cache.get(KEY)


class TestStoreVerification:
    @pytest.fixture
    def response(self):
        return serve_request(CompileRequest(model="MLP-500-100")).response

    def test_untampered_run_verifies(self, tmp_path, response):
        store = ArtifactStore(tmp_path)
        run_id = store.save(response)
        assert store.load(run_id, verify=True) == response

    def test_tampered_response_fails_content_address(self, tmp_path, response):
        store = ArtifactStore(tmp_path)
        run_id = store.save(response)
        path = store.runs_root / run_id / "response.json"
        doctored = path.read_text(encoding="utf-8").replace(
            '"duplication_degree": 1', '"duplication_degree": 3'
        )
        assert doctored != path.read_text(encoding="utf-8")
        path.write_text(doctored, encoding="utf-8")
        with pytest.raises(VerificationError) as excinfo:
            store.load(run_id, verify=True)
        error = excinfo.value
        assert error.stage == "store"
        assert error.invariant == "content-address"
        assert run_id in error.ids
        # without verification the doctored bytes load silently (by design:
        # the check is the opt-in tamper seal, not a load-time requirement)
        assert store.load(run_id).request.duplication_degree == 3


class TestVerifiedCompile:
    def test_verify_rows_appear_and_do_not_skew_counters(self, mlp_graph):
        compiler = FPSACompiler(cache=False)
        plain = compiler.compile(mlp_graph)
        verified = compiler.compile(mlp_graph, verify=True)
        names = [t.name for t in verified.timings]
        assert "verify:graph" in names
        assert "verify:coreops" in names
        assert "verify:mapping" in names
        verify_rows = [t for t in verified.timings if t.name.startswith("verify:")]
        assert all(not t.cached and t.provides == () for t in verify_rows)
        # verifiers are not passes: hit/miss accounting must match a plain run
        assert verified.cache_hits == plain.cache_hits
        assert verified.cache_misses == plain.cache_misses

    def test_verify_is_not_part_of_the_request_identity(self):
        plain = CompileRequest(model="MLP-500-100")
        verified = CompileRequest(model="MLP-500-100", verify=True)
        assert plain.fingerprint() == verified.fingerprint()
