"""Property tests of the IR verifiers: accept valid artifacts, reject
targeted mutations.

Each verifier is exercised two ways: hypothesis-generated *valid* artifacts
must verify silently, and a drawn structural mutation of the same artifact
must raise a :class:`~repro.errors.VerificationError` naming the violated
invariant.  Mutations always run on a deep copy so the session-scoped
fixtures stay pristine.
"""

from __future__ import annotations

import copy

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.verify import (
    ARTIFACT_VERIFIERS,
    verification_enabled,
    verify_artifact,
    verify_artifacts,
    verify_coreops,
    verify_graph,
    verify_mapping,
    verify_netlist,
    verify_partition,
    verify_placement,
    verify_pnr,
    verify_routing,
)
from repro.errors import VerificationError
from repro.graph.graph import ComputationalGraph
from repro.graph.ops import Dense, InputOp, ReLU
from repro.mapper.mapper import SpatialTemporalMapper
from repro.partition.partitioner import partition_coreops
from repro.pnr.pnr import PlaceAndRoute
from repro.synthesizer.synthesizer import synthesize

# ---------------------------------------------------------------------------
# generators
# ---------------------------------------------------------------------------

widths_st = st.lists(st.integers(min_value=2, max_value=40), min_size=1, max_size=4)
in_size_st = st.integers(min_value=2, max_value=40)


def build_mlp(in_size: int, widths: list[int], relu: bool = True) -> ComputationalGraph:
    graph = ComputationalGraph("prop-mlp")
    graph.add("input", InputOp((in_size,)))
    prev = "input"
    for i, width in enumerate(widths):
        prev = graph.add(f"dense{i}", Dense(width), inputs=[prev]).name
        if relu and i < len(widths) - 1:
            prev = graph.add(f"relu{i}", ReLU(), inputs=[prev]).name
    return graph


# ---------------------------------------------------------------------------
# graph verifier
# ---------------------------------------------------------------------------

class TestVerifyGraph:
    @settings(max_examples=15)
    @given(in_size=in_size_st, widths=widths_st)
    def test_accepts_valid_graphs(self, in_size, widths):
        verify_graph(build_mlp(in_size, widths))

    @settings(max_examples=15)
    @given(in_size=in_size_st, widths=widths_st, mutation=st.sampled_from(
        ["dangling", "rename", "cycle"]
    ))
    def test_rejects_mutations(self, in_size, widths, mutation):
        graph = build_mlp(in_size, widths)
        if mutation == "dangling":
            graph.node("dense0").inputs.append("no_such_node")
            invariant = "dangling-input"
        elif mutation == "rename":
            graph._nodes["ghost"] = graph._nodes.pop("dense0")
            graph._order[graph._order.index("dense0")] = "ghost"
            invariant = "name-mismatch"
        else:
            # an edge from the last layer back into the first closes a cycle
            last = f"dense{len(widths) - 1}"
            graph.node("dense0").inputs.append(last)
            invariant = "cycle"
        with pytest.raises(VerificationError) as excinfo:
            verify_graph(graph)
        assert excinfo.value.invariant == invariant
        assert excinfo.value.stage == "graph"
        assert excinfo.value.ids  # offending ids are always named

    def test_verification_error_names_the_offender(self):
        graph = build_mlp(4, [3])
        graph.node("dense0").inputs.append("phantom")
        with pytest.raises(VerificationError, match="dense0<-phantom"):
            verify_graph(graph)


# ---------------------------------------------------------------------------
# core-op graph verifier
# ---------------------------------------------------------------------------

class TestVerifyCoreops:
    @settings(max_examples=8)
    @given(in_size=in_size_st, widths=widths_st)
    def test_accepts_synthesized_graphs(self, in_size, widths):
        verify_coreops(synthesize(build_mlp(in_size, widths)))

    @settings(max_examples=8)
    @given(in_size=in_size_st, widths=widths_st, mutation=st.sampled_from(
        ["density", "ghost-edge", "key-mismatch", "cycle"]
    ))
    def test_rejects_mutations(self, in_size, widths, mutation):
        coreops = synthesize(build_mlp(in_size, widths))
        name = next(iter(coreops._groups))
        edge_cls = type(coreops._edges[0])
        if mutation == "density":
            object.__setattr__(coreops._groups[name], "density", 0.0)
            invariant = "weight-group-consistency"
        elif mutation == "ghost-edge":
            coreops._edges.append(
                edge_cls(src="ghost", dst=name, values_per_instance=1)
            )
            invariant = "edge-endpoints"
        elif mutation == "key-mismatch":
            coreops._groups["ghost"] = coreops._groups.pop(name)
            invariant = "name-mismatch"
        else:
            # a back edge from the last group to the first closes a cycle
            # (for a single group it degenerates to a self-loop)
            groups = list(coreops._groups)
            coreops._edges.append(
                edge_cls(src=groups[-1], dst=groups[0], values_per_instance=1)
            )
            invariant = "cycle"
        with pytest.raises(VerificationError) as excinfo:
            verify_coreops(coreops)
        assert excinfo.value.invariant == invariant
        assert excinfo.value.stage == "synthesis"


# ---------------------------------------------------------------------------
# netlist / mapping verifiers
# ---------------------------------------------------------------------------

class TestVerifyMapping:
    @settings(max_examples=6)
    @given(
        in_size=in_size_st,
        widths=widths_st,
        duplication=st.sampled_from([1, 2, 4]),
    )
    def test_accepts_mapped_models(self, config, in_size, widths, duplication):
        mapping = SpatialTemporalMapper(config).map(
            synthesize(build_mlp(in_size, widths)),
            duplication_degree=duplication,
        )
        verify_mapping(mapping)

    @settings(max_examples=6)
    @given(in_size=in_size_st, widths=widths_st, mutation=st.sampled_from(
        ["drop-block", "empty-sinks", "pe-count", "duplicate-net", "zero-bits"]
    ))
    def test_rejects_mutations(self, config, in_size, widths, mutation):
        mapping = SpatialTemporalMapper(config).map(
            synthesize(build_mlp(in_size, widths)), duplication_degree=1
        )
        netlist = mapping.netlist
        if mutation == "drop-block":
            netlist.blocks.pop(netlist.nets[0].driver)
            invariant = "net-terminals"
        elif mutation == "empty-sinks":
            object.__setattr__(netlist.nets[0], "sinks", ())
            invariant = "net-sinks"
        elif mutation == "pe-count":
            object.__setattr__(
                mapping.allocation, "total_pes", mapping.allocation.total_pes + 1
            )
            invariant = "pe-count"
        elif mutation == "duplicate-net":
            netlist.nets.append(netlist.nets[0])
            invariant = "duplicate-net"
        else:
            object.__setattr__(netlist.nets[0], "bits", 0)
            invariant = "net-bits"
        with pytest.raises(VerificationError) as excinfo:
            verify_mapping(mapping)
        assert excinfo.value.invariant == invariant
        assert excinfo.value.stage == "mapping"

    def test_netlist_verifier_standalone(self, lenet_mapping):
        netlist = copy.deepcopy(lenet_mapping.netlist)
        verify_netlist(netlist)
        netlist.blocks["ghost"] = netlist.blocks.pop(next(iter(netlist.blocks)))
        with pytest.raises(VerificationError) as excinfo:
            verify_netlist(netlist)
        assert excinfo.value.invariant == "name-mismatch"


# ---------------------------------------------------------------------------
# placement / routing / pnr verifiers
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def mlp_pnr(config):
    """One P&R run of a small MLP, shared (read-only) by the tests below."""
    mapping = SpatialTemporalMapper(config).map(
        synthesize(build_mlp(16, [8, 4])), duplication_degree=1
    )
    return mapping.netlist, PlaceAndRoute(config, seed=0).run(mapping.netlist)


class TestVerifyPnR:
    def test_accepts_real_pnr(self, mlp_pnr):
        netlist, pnr = mlp_pnr
        verify_placement(pnr.placement, netlist)
        verify_routing(pnr.routing, netlist, pnr.placement)
        verify_pnr(pnr, netlist)
        # the intra-artifact subset (no context) must also pass
        verify_pnr(pnr, None)

    @pytest.mark.parametrize("mutation,invariant", [
        ("out-of-bounds", "placement-bounds"),
        ("overlap", "placement-overlap"),
        ("unplaced", "placement-complete"),
        ("phantom", "placement-phantom"),
        ("io-site", "placement-io-sites"),
    ])
    def test_rejects_placement_mutations(self, mlp_pnr, mutation, invariant):
        netlist, pnr = mlp_pnr
        placement = copy.deepcopy(pnr.placement)
        blocks = list(placement.positions)
        non_io = [
            b for b in blocks
            if netlist.blocks[b].type != "IO"
        ]
        if mutation == "out-of-bounds":
            placement.positions[blocks[0]] = (placement.fabric.width + 7, -9)
        elif mutation == "overlap":
            placement.positions[non_io[0]] = placement.positions[non_io[1]]
        elif mutation == "unplaced":
            placement.positions.pop(blocks[0])
        elif mutation == "phantom":
            placement.positions["ghost"] = (0, 0)
        else:
            # a compute block on a peripheral I/O site
            placement.positions[non_io[0]] = (-1, 0)
        with pytest.raises(VerificationError) as excinfo:
            verify_placement(placement, netlist)
        assert excinfo.value.invariant in (invariant, "placement-overlap")

    @pytest.mark.parametrize("mutation,invariant", [
        ("share-wire", "rr-capacity"),
        ("overused-count", "routing-legal"),
        ("rename", "name-mismatch"),
        ("stray-path", "route-tree"),
        ("drop-net", "nets-routed"),
        ("phantom-net", "nets-phantom"),
        ("drop-sink-path", "route-connects-sinks"),
    ])
    def test_rejects_routing_mutations(self, mlp_pnr, mutation, invariant):
        netlist, pnr = mlp_pnr
        routing = copy.deepcopy(pnr.routing)
        names = sorted(routing.nets)
        first, second = routing.nets[names[0]], routing.nets[names[1]]
        if mutation == "share-wire":
            wire = next(n for n in first.nodes if n.is_wire)
            second.nodes.add(wire)
        elif mutation == "overused-count":
            routing.overused_nodes = 3
        elif mutation == "rename":
            routing.nets["ghost"] = routing.nets.pop(names[0])
        elif mutation == "stray-path":
            foreign = next(n for n in second.nodes if n.is_wire)
            next(iter(first.sink_paths.values())).append(foreign)
        elif mutation == "drop-net":
            routing.nets.pop(names[0])
        elif mutation == "phantom-net":
            # an empty routed net: no shared wires, purely a phantom entry
            routing.nets["ghost"] = type(first)(name="ghost")
        else:
            first.sink_paths.pop(next(iter(first.sink_paths)))
        with pytest.raises(VerificationError) as excinfo:
            verify_routing(routing, netlist, pnr.placement)
        assert excinfo.value.invariant == invariant
        assert excinfo.value.stage == "pnr"


# ---------------------------------------------------------------------------
# partition verifier
# ---------------------------------------------------------------------------

class TestVerifyPartition:
    @settings(max_examples=6)
    @given(num_chips=st.integers(min_value=1, max_value=4))
    def test_accepts_real_partitions(self, lenet_coreops, num_chips):
        plan = partition_coreops(lenet_coreops, num_chips=num_chips)
        verify_partition(plan)
        verify_partition(plan, lenet_coreops)

    @pytest.mark.parametrize("mutation,invariant", [
        ("shard-count", "shard-count"),
        ("reassign", "exactly-once"),
        ("pe-total", "pe-total"),
        ("same-chip-cut", "cut-crosses-chips"),
        ("drop-cut-edge", "cut-set-closure"),
    ])
    def test_rejects_mutations(self, lenet_coreops, mutation, invariant):
        plan = copy.deepcopy(partition_coreops(lenet_coreops, num_chips=2))
        if mutation == "shard-count":
            plan.num_chips = 3
        elif mutation == "reassign":
            group = plan.shards[0].groups[0]
            plan.assignment[group] = 1
        elif mutation == "pe-total":
            plan.total_pes += 1
        elif mutation == "same-chip-cut":
            if not plan.cut_edges:
                pytest.skip("partition produced no cut edges")
            edge = plan.cut_edges[0]
            object.__setattr__(edge, "dst_chip", edge.src_chip)
        else:
            if not plan.cut_edges:
                pytest.skip("partition produced no cut edges")
            plan.cut_edges.pop(0)
        with pytest.raises(VerificationError) as excinfo:
            verify_partition(plan, lenet_coreops)
        assert excinfo.value.invariant == invariant
        assert excinfo.value.stage == "partition"

    def test_capacity_violation(self, lenet_coreops):
        plan = copy.deepcopy(partition_coreops(lenet_coreops, num_chips=2))
        plan.capacity_pes_per_chip = 1
        with pytest.raises(VerificationError) as excinfo:
            verify_partition(plan)
        assert excinfo.value.invariant == "capacity"


# ---------------------------------------------------------------------------
# registry / enablement
# ---------------------------------------------------------------------------

class TestRegistry:
    def test_registry_covers_the_structural_artifacts(self):
        assert set(ARTIFACT_VERIFIERS) == {
            "graph", "coreops", "partition", "mapping", "pnr"
        }

    def test_verify_artifact_skips_unknown_and_none(self, mlp_coreops):
        assert verify_artifact("coreops", mlp_coreops)
        assert not verify_artifact("performance", object())
        assert not verify_artifact("coreops", None)

    def test_verify_artifacts_reports_what_it_checked(self, mlp_coreops):
        verified = verify_artifacts({"coreops": mlp_coreops, "performance": object()})
        assert verified == ["coreops"]

    def test_enablement_explicit_beats_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_VERIFY", raising=False)
        assert not verification_enabled()
        assert verification_enabled(True)
        monkeypatch.setenv("REPRO_VERIFY", "1")
        assert verification_enabled()
        assert not verification_enabled(False)
        monkeypatch.setenv("REPRO_VERIFY", "off")
        assert not verification_enabled()
