"""Tests of the determinism & concurrency linter (``repro lint``)."""

from __future__ import annotations

import json

from repro.analysis.lint import RULES, Finding, lint_paths, lint_source
from repro.cli import main


def rules_of(findings):
    return [f.rule for f in findings]


class TestDET001UnseededRNG:
    def test_flags_global_random_calls(self):
        findings = lint_source(
            "import random\nx = random.random()\nrandom.shuffle(items)\n",
            path="src/repro/pnr/foo.py",
        )
        assert rules_of(findings) == ["DET001", "DET001"]

    def test_flags_from_import(self):
        findings = lint_source(
            "from random import shuffle\nshuffle(items)\n",
            path="src/repro/x.py",
        )
        assert rules_of(findings) == ["DET001"]

    def test_flags_numpy_global_state(self):
        findings = lint_source(
            "import numpy as np\nx = np.random.rand(3)\n",
            path="src/repro/x.py",
        )
        assert rules_of(findings) == ["DET001"]

    def test_allows_owned_generators(self):
        findings = lint_source(
            "import random\nimport numpy as np\n"
            "rng = random.Random(7)\nrng.shuffle(items)\n"
            "g = np.random.default_rng(7)\ng.normal()\n",
            path="src/repro/x.py",
        )
        assert findings == []

    def test_seeding_module_is_exempt(self):
        findings = lint_source(
            "import random\nrandom.seed(0)\n",
            path="src/repro/seeding.py",
        )
        assert findings == []


class TestDET002UnsortedSetIteration:
    def test_flags_for_loop_over_set_in_order_sensitive_stage(self):
        source = "s = {1, 2, 3}\nfor x in s:\n    out.append(x)\n"
        assert rules_of(
            lint_source(source, path="src/repro/pnr/foo.py")
        ) == ["DET002"]
        # the same code outside pnr/partition/mapper is not flagged
        assert lint_source(source, path="src/repro/perf/foo.py") == []

    def test_order_insensitive_consumers_are_exempt(self):
        findings = lint_source(
            "s = set(xs)\ntotal = sum(v for v in s)\nbiggest = max(v for v in s)\n"
            "ordered = sorted(s)\n",
            path="src/repro/mapper/foo.py",
        )
        assert findings == []

    def test_set_comprehensions_are_exempt(self):
        findings = lint_source(
            "s = {1, 2}\nt = {x for x in s}\nd = {x: 1 for x in s}\n",
            path="src/repro/partition/foo.py",
        )
        assert findings == []

    def test_flags_list_comprehension_feeding_order(self):
        findings = lint_source(
            "s = frozenset(xs)\nout = [x for x in s]\n",
            path="src/repro/pnr/foo.py",
        )
        assert rules_of(findings) == ["DET002"]


class TestDET003ImpureFingerprint:
    def test_flags_wall_clock_in_fingerprint(self):
        findings = lint_source(
            "import time\n"
            "def request_fingerprint(r):\n"
            "    return hash((r, time.time()))\n",
            path="src/repro/x.py",
        )
        assert rules_of(findings) == ["DET003"]

    def test_flags_id_in_cache_key(self):
        findings = lint_source(
            "def cache_key(obj):\n    return id(obj)\n",
            path="src/repro/x.py",
        )
        assert rules_of(findings) == ["DET003"]

    def test_flags_entropy_in_digest(self):
        findings = lint_source(
            "import os\n"
            "def subgraph_digest(g):\n"
            "    return hash((g, os.urandom(8)))\n",
            path="src/repro/x.py",
        )
        assert rules_of(findings) == ["DET003"]

    def test_wall_clock_outside_fingerprints_is_fine(self):
        findings = lint_source(
            "import time\n"
            "def measure():\n    return time.perf_counter()\n",
            path="src/repro/x.py",
        )
        assert findings == []


class TestCONC001SharedMutationInWorker:
    def test_flags_free_variable_mutation(self):
        findings = lint_source(
            "results = {}\n"
            "def work(item):\n"
            "    results[item] = item * 2\n"
            "with pool() as p:\n"
            "    p.map(work, items)\n",
            path="src/repro/x.py",
        )
        assert rules_of(findings) == ["CONC001"]

    def test_flags_global_declaration(self):
        findings = lint_source(
            "def work(item):\n"
            "    global counter\n"
            "    counter += 1\n"
            "ex.submit(work, 1)\n",
            path="src/repro/x.py",
        )
        assert "CONC001" in rules_of(findings)

    def test_pure_workers_and_undispatched_functions_are_fine(self):
        findings = lint_source(
            "results = {}\n"
            "def work(item):\n"
            "    local = {}\n"
            "    local[item] = 1\n"
            "    return local\n"
            "def not_dispatched(item):\n"
            "    results[item] = 1\n"
            "p.submit(work, 1)\n",
            path="src/repro/x.py",
        )
        assert findings == []


class TestERR001BuiltinRaise:
    def test_flags_builtin_raises(self):
        findings = lint_source(
            "raise ValueError('x')\n",
            path="src/repro/x.py",
        )
        assert rules_of(findings) == ["ERR001"]

    def test_typed_errors_are_fine(self):
        findings = lint_source(
            "from repro.errors import InvalidRequestError\n"
            "raise InvalidRequestError('x')\n",
            path="src/repro/x.py",
        )
        assert findings == []

    def test_flags_bare_timeout_error(self):
        # a bare TimeoutError loses the job id/deadline that the typed
        # DeadlineExceededError carries into the wire-level ErrorPayload
        findings = lint_source(
            "raise TimeoutError('too slow')\n",
            path="src/repro/x.py",
        )
        assert rules_of(findings) == ["ERR001"]

    def test_deadline_exceeded_error_is_fine(self):
        findings = lint_source(
            "from repro.errors import DeadlineExceededError\n"
            "raise DeadlineExceededError('too slow')\n",
            path="src/repro/x.py",
        )
        assert findings == []


class TestSuppression:
    def test_same_line_suppression(self):
        findings = lint_source(
            "raise KeyError(name)  # repro-lint: disable=ERR001\n",
            path="src/repro/x.py",
        )
        assert findings == []

    def test_line_above_suppression(self):
        findings = lint_source(
            "# repro-lint: disable=ERR001\nraise KeyError(name)\n",
            path="src/repro/x.py",
        )
        assert findings == []

    def test_disable_all(self):
        findings = lint_source(
            "import random\n"
            "random.shuffle(x)  # repro-lint: disable=all\n",
            path="src/repro/x.py",
        )
        assert findings == []

    def test_suppressing_one_rule_keeps_the_others(self):
        findings = lint_source(
            "raise ValueError('x')  # repro-lint: disable=DET001\n",
            path="src/repro/x.py",
        )
        assert rules_of(findings) == ["ERR001"]


class TestOutputAndCli:
    def test_finding_format_and_dict(self):
        finding = Finding(path="a.py", line=3, col=4, rule="ERR001", message="m")
        assert finding.format() == "a.py:3:4: ERR001 m"
        assert finding.to_dict() == {
            "path": "a.py", "line": 3, "col": 4, "rule": "ERR001", "message": "m",
        }

    def test_rules_catalog(self):
        assert set(RULES) == {"DET001", "DET002", "DET003", "CONC001", "ERR001"}

    def test_syntax_errors_surface_as_findings(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        findings = lint_paths([str(bad)])
        assert rules_of(findings) == ["PARSE"]

    def test_lint_paths_walks_directories_deterministically(self, tmp_path):
        (tmp_path / "b.py").write_text("raise ValueError('x')\n")
        (tmp_path / "a.py").write_text("raise KeyError('y')\n")
        findings = lint_paths([str(tmp_path)])
        assert all(
            f.path.endswith(n)
            for f, n in zip(findings, ("a.py", "b.py"), strict=True)
        )
        assert rules_of(findings) == ["ERR001", "ERR001"]

    def test_cli_exit_codes_and_json(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("raise ValueError('x')\n")
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        assert main(["lint", str(clean)]) == 0
        assert "clean" in capsys.readouterr().out
        assert main(["lint", str(dirty)]) == 1
        assert "ERR001" in capsys.readouterr().out
        assert main(["lint", str(dirty), "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["rule"] == "ERR001"

    def test_cli_select_filters_rules(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("raise ValueError('x')\n")
        assert main(["lint", str(dirty), "--select", "DET001"]) == 0
        capsys.readouterr()

    def test_cli_rejects_unknown_rules(self, tmp_path, capsys):
        assert main(["lint", str(tmp_path), "--select", "NOPE"]) == 2
        assert "unknown lint rule" in capsys.readouterr().err

    def test_the_toolchain_lints_clean(self):
        # the acceptance gate: repro's own sources carry no findings
        assert lint_paths(["src/repro"]) == []
