"""Regression corpus: fuzz-found model shapes replayed as permanent
tier-1 differential checks.

Every ``corpus/*.json`` file is one serialized :class:`ModelSpec`.  To
add a regression, drop the shrunk reproducer from a fuzz report here —
the parametrization picks it up by filename.
"""

import json
from pathlib import Path

import pytest

from repro.analysis.verify import verify_graph
from repro.fuzz import ModelSpec, build_graph, check_spec, estimate_pes

CORPUS_DIR = Path(__file__).parent / "corpus"
CORPUS_FILES = sorted(CORPUS_DIR.glob("*.json"))


def _load(path: Path) -> ModelSpec:
    return ModelSpec.from_dict(json.loads(path.read_text(encoding="utf-8")))


class TestCorpus:
    def test_corpus_is_populated(self):
        names = [path.stem for path in CORPUS_FILES]
        assert len(names) >= 3
        # the corpus must keep covering the interesting regions
        assert any("near" in name for name in names)
        assert any("branchy" in name for name in names)

    @pytest.mark.parametrize(
        "path", CORPUS_FILES, ids=[path.stem for path in CORPUS_FILES]
    )
    def test_spec_builds_a_verified_graph(self, path):
        graph = build_graph(_load(path))
        verify_graph(graph)

    @pytest.mark.parametrize(
        "path", CORPUS_FILES, ids=[path.stem for path in CORPUS_FILES]
    )
    def test_spec_passes_the_differential_lattice(self, path):
        spec = _load(path)
        check = check_spec(spec)
        assert check.ok, [f.detail for f in check.findings]

    def test_capacity_classes_are_represented(self):
        estimates = {path.stem: estimate_pes(_load(path)) for path in CORPUS_FILES}
        assert any(e > 2048 for e in estimates.values()), estimates
        assert any(e <= 2048 for e in estimates.values()), estimates
