"""Property tests of the random-model generator."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.verify import verify_graph
from repro.errors import InvalidRequestError
from repro.fuzz import (
    LAYER_KINDS,
    SIZE_CLASSES,
    LayerSpec,
    ModelSpec,
    build_graph,
    estimate_pes,
    generate_spec,
    generate_specs,
)
from repro.fuzz.generate import size_class_for_index

seeds = st.integers(min_value=0, max_value=2**32 - 1)
indices = st.integers(min_value=0, max_value=60)


class TestGeneratedSpecs:
    @given(seed=seeds, index=indices)
    @settings(max_examples=40)
    def test_every_spec_builds_a_verified_graph(self, seed, index):
        spec = generate_spec(seed, index)
        graph = build_graph(spec)
        verify_graph(graph)  # raises VerificationError on any violation

    @given(seed=seeds, index=indices)
    @settings(max_examples=40)
    def test_spec_round_trips_through_json(self, seed, index):
        spec = generate_spec(seed, index)
        clone = ModelSpec.from_json(spec.to_json())
        assert clone == spec
        assert clone.spec_id() == spec.spec_id()
        # the dict form is plain JSON data
        assert json.loads(json.dumps(spec.to_dict())) == spec.to_dict()

    @given(seed=seeds, index=indices)
    @settings(max_examples=20)
    def test_generation_is_deterministic(self, seed, index):
        assert generate_spec(seed, index) == generate_spec(seed, index)

    @given(seed=seeds, index=indices)
    @settings(max_examples=20)
    def test_size_class_schedule(self, seed, index):
        spec = generate_spec(seed, index)
        assert spec.size_class == size_class_for_index(index)
        assert spec.size_class in SIZE_CLASSES
        assert all(layer.kind in LAYER_KINDS for layer in spec.layers)

    @given(seed=seeds)
    @settings(max_examples=10)
    def test_capacity_classes_bracket_the_chip(self, seed):
        near = generate_spec(seed, 0, size_class="near")
        over = generate_spec(seed, 0, size_class="over")
        assert estimate_pes(near) <= 2048 < estimate_pes(over)

    def test_generate_specs_batch(self):
        specs = generate_specs(12, seed=3)
        assert len(specs) == 12
        assert len({spec.spec_id() for spec in specs}) > 1
        assert any(spec.size_class == "near" for spec in specs)
        assert any(spec.size_class == "over" for spec in specs)


class TestSpecValidation:
    def test_unknown_layer_kind_rejected(self):
        with pytest.raises(InvalidRequestError):
            LayerSpec("transformer", width=8)

    def test_empty_layer_list_rejected(self):
        with pytest.raises(InvalidRequestError):
            ModelSpec(name="x", input_shape=(8,), layers=())

    def test_bad_input_shape_rejected(self):
        with pytest.raises(InvalidRequestError):
            ModelSpec(
                name="x", input_shape=(3, 8), layers=(LayerSpec("dense", width=4),)
            )
        with pytest.raises(InvalidRequestError):
            ModelSpec(
                name="x", input_shape=(0,), layers=(LayerSpec("dense", width=4),)
            )

    def test_unknown_field_rejected_on_load(self):
        data = generate_spec(0, 0).to_dict()
        data["surprise"] = 1
        with pytest.raises(InvalidRequestError):
            ModelSpec.from_dict(data)


class TestRepeatKnob:
    def _spec(self, repeat):
        return ModelSpec(
            name="x",
            input_shape=(16,),
            layers=(LayerSpec("dense", width=8), LayerSpec("dense", width=8)),
            repeat=repeat,
        )

    def test_effective_layers_stack_the_block(self):
        spec = self._spec(3)
        assert len(spec.effective_layers) == 6
        graph = build_graph(spec)
        verify_graph(graph)
        assert len(graph.nodes()) > len(build_graph(self._spec(1)).nodes())

    def test_round_trips_and_old_payloads_parse(self):
        spec = self._spec(3)
        clone = ModelSpec.from_json(spec.to_json())
        assert clone == spec
        assert clone.repeat == 3
        # repeat=1 is omitted from the wire form, so payloads (and spec
        # ids) written before the knob existed are byte-for-byte unchanged
        assert "repeat" not in self._spec(1).to_dict()
        data = self._spec(1).to_dict()
        assert ModelSpec.from_dict(data).repeat == 1
        assert self._spec(1).spec_id() == ModelSpec.from_dict(data).spec_id()

    def test_invalid_repeat_rejected(self):
        for bad in (0, -1, True, "2"):
            with pytest.raises(InvalidRequestError):
                self._spec(bad)

    @given(seed=seeds)
    @settings(max_examples=30)
    def test_generator_draws_repeat_only_for_small_specs(self, seed):
        spec = generate_spec(seed, 0, size_class="small")
        assert spec.repeat >= 1
        assert generate_spec(seed, 0, size_class="over").repeat == 1
