"""Property tests of the delta-debugging shrinker (against synthetic
oracles — the real differential oracle is exercised in test_campaign)."""

from dataclasses import replace

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fuzz import generate_spec, shrink, spec_size

seeds = st.integers(min_value=0, max_value=2**32 - 1)
indices = st.integers(min_value=0, max_value=40)


def _kind_oracle(kind):
    """Synthetic bug: the failure reproduces while ``kind`` is present."""

    def fails(spec):
        return any(layer.kind == kind for layer in spec.layers)

    return fails


class TestShrink:
    @given(seed=seeds, index=indices)
    @settings(max_examples=25)
    def test_output_still_fails_and_is_no_larger(self, seed, index):
        spec = generate_spec(seed, index, size_class="small")
        kind = spec.layers[0].kind
        fails = _kind_oracle(kind)
        assert fails(spec)
        result = shrink(spec, fails)
        assert fails(result.spec)
        assert spec_size(result.spec) <= spec_size(spec)
        assert len(result.spec.layers) <= len(spec.layers)
        assert result.original == spec

    @given(seed=seeds, index=indices)
    @settings(max_examples=15)
    def test_converges_to_the_triggering_layer(self, seed, index):
        spec = generate_spec(seed, index, size_class="small")
        kind = spec.layers[0].kind
        result = shrink(spec, _kind_oracle(kind))
        # 1-minimal for a single-layer trigger: nothing but the trigger
        # (and, for the branch kinds, whatever the builder needs) remains
        assert sum(layer.kind == kind for layer in result.spec.layers) == 1
        assert len(result.spec.layers) <= 2

    def test_zero_budget_returns_the_input(self):
        spec = generate_spec(0, 0, size_class="small")
        result = shrink(spec, _kind_oracle(spec.layers[0].kind), max_evaluations=0)
        assert result.spec == spec
        assert result.evaluations == 0
        assert result.steps == []

    def test_predicate_errors_reject_the_candidate(self):
        spec = generate_spec(0, 0, size_class="small")

        def explodes(candidate):
            raise RuntimeError("flaky predicate")

        result = shrink(spec, explodes)
        assert result.spec == spec  # never lost the reproducer
        assert result.evaluations > 0

    def test_repeat_collapses_when_the_failure_survives(self):
        spec = replace(generate_spec(0, 0, size_class="small"), repeat=3)
        result = shrink(spec, _kind_oracle(spec.layers[0].kind))
        # the failure does not depend on the stacking, so the shrinker
        # must unroll it away (collapse-repeat is the first candidate)
        assert result.spec.repeat == 1
        assert any("repeat" in step for step in result.steps)

    def test_repeat_survives_layer_mutations_when_load_bearing(self):
        spec = replace(generate_spec(0, 0, size_class="small"), repeat=3)

        def needs_stacking(candidate):
            return candidate.repeat >= 3 and bool(candidate.layers)

        result = shrink(spec, needs_stacking)
        # layer-level candidates must not silently reset repeat to 1
        assert result.spec.repeat == 3
        assert needs_stacking(result.spec)

    def test_spec_size_counts_effective_layers(self):
        spec = generate_spec(0, 0, size_class="small")
        stacked = replace(spec, repeat=2)
        assert spec_size(stacked) > spec_size(spec)

    def test_steps_replay_monotonically(self):
        spec = generate_spec(7, 3, size_class="small")
        result = shrink(spec, _kind_oracle(spec.layers[0].kind))
        assert len(result.steps) > 0
        data = result.to_dict()
        assert data["spec_id"] == result.spec.spec_id()
        assert data["original_id"] == spec.spec_id()
        assert data["evaluations"] == result.evaluations
