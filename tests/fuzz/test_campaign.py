"""Campaign-driver tests, including the injected-determinism-bug
acceptance check: the oracle catches a rigged compiler and the shrinker
reduces the reproducer to a handful of layers."""

import json

from repro.fuzz import campaign as campaign_module
from repro.fuzz import default_campaign_seed, generate_spec, run_campaign
from repro.fuzz import oracle as oracle_module


class TestDefaultSeed:
    def test_ci_profile_pins_zero(self, monkeypatch):
        monkeypatch.setenv("HYPOTHESIS_PROFILE", "ci")
        assert default_campaign_seed() == 0
        monkeypatch.delenv("HYPOTHESIS_PROFILE")
        assert default_campaign_seed() == 0  # ci is the default profile

    def test_dev_profile_draws_fresh(self, monkeypatch):
        monkeypatch.setenv("HYPOTHESIS_PROFILE", "dev")
        seed = default_campaign_seed()
        assert isinstance(seed, int) and 0 <= seed < 2**32

    def test_conftest_published_the_profile(self):
        # tests/conftest.py writes the resolved profile back to the
        # environment so campaigns and hypothesis agree on derandomization
        import os

        assert os.environ.get("HYPOTHESIS_PROFILE") in ("ci", "dev")


class TestCampaign:
    def test_clean_campaign_reports_ok(self):
        messages = []
        report = run_campaign(models=3, seed=0, log=messages.append)
        assert report.ok
        assert report.seed == 0
        assert len(report.specs) == 3
        assert report.compiles > 0
        assert report.failures == []
        assert any("seed=0" in m for m in messages)
        # the report is plain JSON data
        assert json.loads(json.dumps(report.to_dict()))["ok"] is True

    def test_campaign_is_reproducible(self):
        first = run_campaign(models=4, seed=11)
        second = run_campaign(models=4, seed=11)
        assert first.specs == second.specs
        assert first.compiles == second.compiles

    def test_injected_bug_is_caught_and_shrunk_small(self, monkeypatch):
        """Acceptance: a rigged summary (latency perturbed on every other
        compile of concat-bearing graphs) is flagged by the oracle and
        delta-debugged to a reproducer of at most 5 layers."""
        real = oracle_module.ResultSummary
        calls = {"n": 0}

        class RiggedSummary:
            @staticmethod
            def from_result(result, config=None):
                summary = real.from_result(result, config)
                has_concat = any(
                    node.name.startswith("concat") for node in result.graph.nodes()
                )
                if has_concat and summary.performance:
                    calls["n"] += 1
                    if calls["n"] % 2 == 0:
                        summary.performance["latency_us"] += 0.125
                return summary

        monkeypatch.setattr(oracle_module, "ResultSummary", RiggedSummary)
        # seed-0 index 8 is the first concat-bearing spec; indices 0-7
        # stay clean, proving the oracle does not cry wolf
        report = run_campaign(models=9, seed=0, shrink_failures=True)
        assert not report.ok
        assert len(report.failures) == 1
        failure = report.failures[0]
        assert failure.index == 8
        assert any(f["kind"] == "determinism" for f in failure.findings)
        assert failure.shrunk is not None
        shrunk_spec = failure.shrunk.spec
        assert len(shrunk_spec.layers) <= 5
        # the minimal reproducer still carries the triggering construct
        assert any(layer.kind == "concat" for layer in shrunk_spec.layers)
        assert len(shrunk_spec.layers) <= len(failure.spec.layers)
        # the report serializes, reproducer included
        data = json.loads(json.dumps(report.to_dict()))
        assert data["findings"][0]["shrunk"]["spec_id"] == shrunk_spec.spec_id()

    def test_groups_of_maps_config_names(self):
        spec = generate_spec(0, 0, size_class="small")
        check = oracle_module.SpecCheck(spec=spec)
        for config, expected in (
            ("repeat", ("repeat",)),
            ("pnr-jit", ("pnr",)),
            ("shared-warm", ("shared",)),
            ("chips1-a", ("chips",)),
            ("auto-b", ("chips",)),
        ):
            check.findings = [
                oracle_module.Finding(spec=spec, config=config, kind="determinism",
                                      detail="x")
            ]
            assert campaign_module._groups_of(check) == expected
