"""Tests of the differential oracle: the lattice finds nothing on the
honest compiler and everything on a rigged one."""

import pytest

from repro.errors import FPSAError
from repro.fuzz import check_spec, compile_spec, generate_spec
from repro.fuzz import oracle as oracle_module
from repro.fuzz.oracle import CONFIG_GROUPS, strip_seconds


class TestStripSeconds:
    def test_removes_wall_clock_keys_per_section(self):
        summary = {
            "pnr": {"place_seconds": 0.5, "route_seconds": 0.1, "cost": 42},
            "performance": {"latency_us": 3.0},
            "model": "m",
        }
        stripped = strip_seconds(summary)
        assert stripped == {
            "pnr": {"cost": 42},
            "performance": {"latency_us": 3.0},
            "model": "m",
        }
        # input is untouched
        assert "place_seconds" in summary["pnr"]

    def test_none_passes_through(self):
        assert strip_seconds(None) is None


class TestCompileSpec:
    def test_ok_outcome_carries_a_stripped_summary(self):
        spec = generate_spec(0, 0, size_class="small")
        outcome = compile_spec(spec, config_name="base")
        assert outcome.ok
        assert outcome.error is None
        for section in outcome.summary.values():
            if isinstance(section, dict):
                assert not any(k.endswith("_seconds") for k in section)

    def test_capacity_error_becomes_a_typed_outcome(self):
        spec = generate_spec(0, 0, size_class="over")
        outcome = compile_spec(spec, config_name="chips1", num_chips=1)
        assert not outcome.ok
        assert outcome.error["code"] == "capacity_error"
        # ... while auto-chips shards the same spec successfully
        sharded = compile_spec(spec, config_name="auto", num_chips="auto")
        assert sharded.ok


class TestCheckSpec:
    def test_small_spec_passes_the_full_lattice(self):
        check = check_spec(generate_spec(0, 0, size_class="small"))
        assert check.ok
        assert check.compiles == len(check.configs)
        # every group ran: repeat/warm/shared/pnr/dedup/chips all present
        assert {"base", "repeat", "warm", "shared-cold", "shared-warm",
                "pnr-base", "dedup-cold", "dedup-warm",
                "chips1-a", "auto-a"} <= set(check.configs)

    def test_over_capacity_spec_skips_pnr_but_checks_chips(self):
        check = check_spec(generate_spec(0, 0, size_class="over"))
        assert check.ok
        assert not any(c.startswith("pnr") for c in check.configs)
        assert "auto-a" in check.configs

    def test_subset_restricts_the_lattice(self):
        check = check_spec(
            generate_spec(0, 0, size_class="small"), subset=("repeat",)
        )
        assert check.ok
        assert check.configs == ["base", "repeat"]

    def test_unknown_subset_rejected(self):
        with pytest.raises(FPSAError):
            check_spec(generate_spec(0, 0), subset=("repeat", "quantum"))

    def test_groups_cover_every_config_name(self):
        assert set(CONFIG_GROUPS) == {
            "repeat", "warm", "shared", "pnr", "chips", "dedup",
        }


class TestInjectedBug:
    def test_rigged_summary_is_caught_as_determinism_finding(self, monkeypatch):
        real = oracle_module.ResultSummary
        calls = {"n": 0}

        class RiggedSummary:
            @staticmethod
            def from_result(result, config=None):
                summary = real.from_result(result, config)
                calls["n"] += 1
                if calls["n"] % 2 == 0 and summary.performance:
                    summary.performance["latency_us"] += 1.0
                return summary

        monkeypatch.setattr(oracle_module, "ResultSummary", RiggedSummary)
        spec = generate_spec(0, 0, size_class="small")
        check = check_spec(spec, subset=("repeat",))
        assert not check.ok
        finding = check.findings[0]
        assert finding.kind == "determinism"
        assert "performance" in finding.detail
        assert finding.to_dict()["spec_id"] == spec.spec_id()

    def test_rigged_error_is_caught_as_error_divergence(self, monkeypatch):
        calls = {"n": 0}
        real_build = oracle_module.build_graph

        def flaky_build(spec):
            calls["n"] += 1
            if calls["n"] % 2 == 0:
                raise FPSAError("cosmic ray")
            return real_build(spec)

        monkeypatch.setattr(oracle_module, "build_graph", flaky_build)
        check = check_spec(generate_spec(0, 0, size_class="small"),
                           subset=("repeat",))
        assert not check.ok
        assert check.findings[0].kind == "error-divergence"
