"""Tests of the PRIME / FP-PRIME / reference baseline models."""

import pytest

from repro.arch.params import PEParams
from repro.baselines import (
    ISAAC_REFERENCE,
    PIPELAYER_REFERENCE,
    PRIME_PUBLISHED,
    FPPrimeArchitecture,
    PrimeArchitecture,
)
from repro.perf.comm import ReconfigurableRoutingComm, SharedBusComm


class TestPrimeArchitecture:
    def test_published_numbers(self):
        prime = PrimeArchitecture()
        assert prime.pe_vmm_latency_ns == pytest.approx(PRIME_PUBLISHED["latency_ns"])
        assert prime.pe_area_mm2 * 1e6 == pytest.approx(PRIME_PUBLISHED["area_um2"])
        assert prime.computational_density_ops_per_mm2 == pytest.approx(
            PRIME_PUBLISHED["computational_density_ops_per_mm2"], rel=0.01
        )

    def test_uses_shared_bus(self):
        assert isinstance(PrimeArchitecture().comm_model(), SharedBusComm)

    def test_chip_area_is_pe_only(self):
        prime = PrimeArchitecture()
        assert prime.chip_area_mm2(100, 50, 50) == pytest.approx(100 * prime.pe_area_mm2)

    def test_crossbar_shape(self):
        assert PrimeArchitecture().crossbar_shape() == (256, 256)


class TestFPPrimeArchitecture:
    def test_same_pe_as_prime(self):
        prime = PrimeArchitecture()
        fp = FPPrimeArchitecture()
        assert fp.pe_vmm_latency_ns == prime.pe_vmm_latency_ns
        assert fp.pe_area_mm2 == prime.pe_area_mm2
        assert fp.pe_ops_per_vmm == prime.pe_ops_per_vmm

    def test_uses_routing_fabric_with_spike_counts(self):
        comm = FPPrimeArchitecture().comm_model()
        assert isinstance(comm, ReconfigurableRoutingComm)
        assert comm.spike_train is False

    def test_area_includes_routing_overhead(self):
        fp = FPPrimeArchitecture()
        prime = PrimeArchitecture()
        assert fp.effective_area_per_pe_mm2 > prime.effective_area_per_pe_mm2

    def test_peak_density_equals_prime(self):
        """FP-PRIME keeps PRIME's PE, so its per-PE peak matches PRIME's."""
        fp = FPPrimeArchitecture()
        prime = PrimeArchitecture()
        fp_rate = fp.pe_ops_per_vmm / fp.pe_vmm_latency_ns
        prime_rate = prime.pe_ops_per_vmm / prime.pe_vmm_latency_ns
        assert fp_rate == pytest.approx(prime_rate)


class TestReferencePoints:
    def test_density_ordering_matches_paper(self):
        """Section 6.2: FPSA (38) > PipeLayer (1.485) > PRIME (1.229) > ISAAC (0.479)."""
        fpsa = PEParams().computational_density_ops_per_mm2
        prime = PrimeArchitecture().computational_density_ops_per_mm2
        assert fpsa > PIPELAYER_REFERENCE.computational_density_ops_per_mm2
        assert PIPELAYER_REFERENCE.computational_density_ops_per_mm2 > prime
        assert prime > ISAAC_REFERENCE.computational_density_ops_per_mm2

    def test_tops_helper(self):
        assert ISAAC_REFERENCE.tops_per_mm2 == pytest.approx(0.479)
