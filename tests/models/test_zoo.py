"""Tests of the benchmark model zoo against the paper's Table 3 numbers."""

import pytest

from repro.models import (
    BENCHMARK_MODELS,
    MODEL_BUILDERS,
    PAPER_TABLE3,
    build_model,
    build_resnet50,
    model_names,
)


class TestRegistry:
    def test_all_benchmark_models_registered(self):
        assert set(BENCHMARK_MODELS) <= set(MODEL_BUILDERS)
        assert model_names() == list(BENCHMARK_MODELS)
        assert len(BENCHMARK_MODELS) == 7

    def test_unknown_model_rejected(self):
        with pytest.raises(KeyError):
            build_model("NotANetwork")

    def test_paper_reference_for_every_benchmark(self):
        for name in BENCHMARK_MODELS:
            assert name in PAPER_TABLE3


class TestModelDefinitions:
    @pytest.mark.parametrize("name", ["MLP-500-100", "LeNet", "AlexNet", "VGG16", "GoogLeNet"])
    def test_weight_counts_match_paper(self, name):
        graph = build_model(name)
        reference = PAPER_TABLE3[name]
        assert graph.total_params() == pytest.approx(reference.weights, rel=0.06)

    @pytest.mark.parametrize("name", ["MLP-500-100", "LeNet", "AlexNet", "VGG16", "GoogLeNet", "ResNet152"])
    def test_op_counts_match_paper(self, name):
        graph = build_model(name)
        reference = PAPER_TABLE3[name]
        assert graph.total_ops() == pytest.approx(reference.ops, rel=0.08)

    def test_resnet152_weights_close_to_paper(self):
        graph = build_model("ResNet152")
        # the paper lists 57.7M; the standard ResNet-152 definition has ~60M
        assert graph.total_params() == pytest.approx(PAPER_TABLE3["ResNet152"].weights, rel=0.08)

    def test_cifar_vgg17_order_of_magnitude(self):
        # the paper does not publish the exact VGG17 configuration; check scale only
        graph = build_model("CIFAR-VGG17")
        reference = PAPER_TABLE3["CIFAR-VGG17"]
        assert 0.3 < graph.total_params() / reference.weights < 3.0
        assert 0.3 < graph.total_ops() / reference.ops < 3.0

    def test_mlp_exact_counts(self):
        graph = build_model("MLP-500-100")
        assert graph.total_params() == 443_000

    def test_lenet_exact_counts(self):
        graph = build_model("LeNet")
        assert graph.total_params() == 430_500

    @pytest.mark.parametrize("name", list(BENCHMARK_MODELS))
    def test_all_models_validate(self, name):
        graph = build_model(name)
        graph.validate()
        assert len(graph.output_nodes()) == 1

    @pytest.mark.parametrize(
        "name, classes",
        [("MLP-500-100", 10), ("LeNet", 10), ("CIFAR-VGG17", 10),
         ("AlexNet", 1000), ("VGG16", 1000), ("GoogLeNet", 1000), ("ResNet152", 1000)],
    )
    def test_output_dimension(self, name, classes):
        graph = build_model(name)
        assert graph.output_nodes()[0].output.shape == (classes,)

    def test_resnet50_smaller_than_resnet152(self):
        assert build_resnet50().total_params() < build_model("ResNet152").total_params()

    def test_vgg11_is_registered_but_not_a_benchmark(self):
        # VGG11 exists for the dedup bench (VGG11 warms VGG16's store);
        # it is not a paper workload, so the Table-3 zoo stays unchanged
        graph = build_model("VGG11")
        graph.validate()
        assert "VGG11" not in BENCHMARK_MODELS
        conv_names = [n.name for n in graph.nodes() if n.name.startswith("conv")]
        assert len(conv_names) == 8
        # configuration A shares D's classifier head: most parameters match
        assert graph.total_params() < build_model("VGG16").total_params()
        assert graph.output_nodes()[0].output.shape == (1000,)

    def test_vgg16_layer_structure(self, vgg16_graph):
        conv_names = [n.name for n in vgg16_graph.nodes() if n.name.startswith("conv")]
        assert len(conv_names) == 13
        fc_names = [n.name for n in vgg16_graph.nodes() if n.name.startswith("fc")]
        assert len(fc_names) == 3

    def test_googlenet_has_nine_inception_modules(self):
        graph = build_model("GoogLeNet")
        concats = [n for n in graph.nodes() if n.kind == "Concat"]
        assert len(concats) == 9
