"""Tests of the communication-subsystem models."""

import pytest

from repro.arch.params import FPSAConfig
from repro.perf.comm import (
    CommContext,
    ReconfigurableRoutingComm,
    SharedBusComm,
    mean_route_segments,
)


def make_ctx(**overrides) -> CommContext:
    defaults = dict(
        n_blocks=1000, active_pes=300.0, values_per_vmm=512, value_bits=6,
        traffic_values_per_sample=1e8,
    )
    defaults.update(overrides)
    return CommContext(**defaults)


class TestMeanRouteSegments:
    def test_grows_with_block_count(self):
        assert mean_route_segments(100) < mean_route_segments(10000)

    def test_minimum_one(self):
        assert mean_route_segments(1) == 1
        assert mean_route_segments(0) == 1

    def test_scales_like_sqrt(self):
        assert mean_route_segments(10000) == pytest.approx(4 * mean_route_segments(625), rel=0.1)


class TestSharedBusComm:
    def test_latency_grows_with_contention(self):
        bus = SharedBusComm(bandwidth_bits_per_ns=128.0)
        quiet = bus.per_vmm_latency_ns(make_ctx(active_pes=10))
        busy = bus.per_vmm_latency_ns(make_ctx(active_pes=1000))
        assert busy == pytest.approx(100 * quiet)

    def test_sample_rate_limit(self):
        bus = SharedBusComm(bandwidth_bits_per_ns=100.0)
        ctx = make_ctx(traffic_values_per_sample=1e6, value_bits=6)
        # 6e6 bits per sample at 1e11 bits/s
        assert bus.sample_rate_limit(ctx) == pytest.approx(1e11 / 6e6)

    def test_zero_traffic_unlimited(self):
        bus = SharedBusComm()
        assert bus.sample_rate_limit(make_ctx(traffic_values_per_sample=0.0)) == float("inf")

    def test_prime_calibration_order_of_magnitude(self):
        """With the default DDR-class bandwidth and a VGG16-scale active PE
        count, the per-VMM bus latency lands in the ~2e4 ns range of Fig. 7."""
        bus = SharedBusComm()
        latency = bus.per_vmm_latency_ns(make_ctx(active_pes=1000))
        assert 1e4 < latency < 5e4


class TestReconfigurableRoutingComm:
    def test_spike_train_slower_than_count(self):
        config = FPSAConfig()
        ctx = make_ctx()
        train = ReconfigurableRoutingComm(config, spike_train=True)
        count = ReconfigurableRoutingComm(config, spike_train=False)
        assert train.per_vmm_latency_ns(ctx) > count.per_vmm_latency_ns(ctx)

    def test_no_rate_limit(self):
        config = FPSAConfig()
        comm = ReconfigurableRoutingComm(config)
        assert comm.sample_rate_limit(make_ctx()) == float("inf")

    def test_latency_grows_with_fabric_size(self):
        config = FPSAConfig()
        comm = ReconfigurableRoutingComm(config, spike_train=True)
        small = comm.per_vmm_latency_ns(make_ctx(n_blocks=100))
        large = comm.per_vmm_latency_ns(make_ctx(n_blocks=100000))
        assert large > small

    def test_fig7_calibration(self):
        """At a VGG16-scale fabric (~3000 blocks) the spike-train latency is
        in the several-hundred-ns range and the spike-count latency in the
        tens of ns, matching the Figure 7 bars."""
        config = FPSAConfig()
        ctx = make_ctx(n_blocks=3300)
        train = ReconfigurableRoutingComm(config, spike_train=True).per_vmm_latency_ns(ctx)
        count = ReconfigurableRoutingComm(config, spike_train=False).per_vmm_latency_ns(ctx)
        assert 300 < train < 1500
        assert 20 < count < 200

    def test_names(self):
        config = FPSAConfig()
        assert "train" in ReconfigurableRoutingComm(config, spike_train=True).name
        assert "count" in ReconfigurableRoutingComm(config, spike_train=False).name
