"""Tests of the utilization-bound analysis (Figure 8c)."""

import pytest

from repro.mapper.allocation import allocate
from repro.perf.bounds import compute_bounds, spatial_utilization


class TestSpatialUtilization:
    def test_in_unit_interval(self, vgg16_coreops, vgg16_graph):
        util = spatial_utilization(vgg16_coreops, vgg16_graph.total_ops())
        assert 0.0 < util <= 1.0

    def test_mlp_better_than_lenet(self, mlp_coreops, mlp_graph, lenet_coreops, lenet_graph):
        """LeNet's tiny weight matrices waste most of each crossbar; the
        MLP's large dense matrices fill crossbars much better."""
        mlp = spatial_utilization(mlp_coreops, mlp_graph.total_ops())
        lenet = spatial_utilization(lenet_coreops, lenet_graph.total_ops())
        assert mlp > lenet


class TestComputeBounds:
    def test_ordering_peak_spatial_temporal(self, vgg16_coreops, vgg16_graph, config):
        allocation = allocate(vgg16_coreops, 4, config.pe)
        bounds = compute_bounds(vgg16_coreops, allocation, vgg16_graph.total_ops(), config)
        assert bounds.peak_density >= bounds.spatial_bound >= bounds.temporal_bound > 0

    def test_peak_density_is_pe_density(self, mlp_coreops, mlp_graph, config):
        allocation = allocate(mlp_coreops, 1, config.pe)
        bounds = compute_bounds(mlp_coreops, allocation, mlp_graph.total_ops(), config)
        assert bounds.peak_density == pytest.approx(
            config.pe.computational_density_ops_per_mm2
        )

    def test_spatial_bound_independent_of_duplication(self, vgg16_coreops, vgg16_graph, config):
        ops = vgg16_graph.total_ops()
        low = compute_bounds(vgg16_coreops, allocate(vgg16_coreops, 1, config.pe), ops, config)
        high = compute_bounds(vgg16_coreops, allocate(vgg16_coreops, 64, config.pe), ops, config)
        assert low.spatial_bound == pytest.approx(high.spatial_bound)

    def test_temporal_bound_rises_with_duplication(self, vgg16_coreops, vgg16_graph, config):
        ops = vgg16_graph.total_ops()
        low = compute_bounds(vgg16_coreops, allocate(vgg16_coreops, 1, config.pe), ops, config)
        high = compute_bounds(vgg16_coreops, allocate(vgg16_coreops, 64, config.pe), ops, config)
        assert high.temporal_bound > low.temporal_bound
        assert high.temporal_bound <= high.spatial_bound * (1 + 1e-9)

    def test_mlp_bounds_nearly_coincide_at_balance(self, mlp_coreops, mlp_graph, config):
        """Figure 8c: the MLP has no weight sharing, so once balanced its
        temporal bound coincides with its spatial bound."""
        allocation = allocate(mlp_coreops, mlp_coreops.max_reuse_degree, config.pe)
        bounds = compute_bounds(mlp_coreops, allocation, mlp_graph.total_ops(), config)
        assert bounds.temporal_bound == pytest.approx(bounds.spatial_bound, rel=0.05)

    def test_utilization_properties(self, lenet_coreops, lenet_graph, config):
        allocation = allocate(lenet_coreops, 4, config.pe)
        bounds = compute_bounds(lenet_coreops, allocation, lenet_graph.total_ops(), config)
        assert 0 < bounds.spatial_utilization <= 1
        assert 0 < bounds.temporal_utilization <= 1
