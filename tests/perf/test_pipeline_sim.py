"""Tests of the cycle-level pipeline simulator."""

import pytest

from repro.perf.analytic import FPSAArchitecture, evaluate_design_point
from repro.perf.pipeline_sim import PipelineSimulator


class TestPipelineSimulator:
    def test_initiation_interval_at_least_window(self, lenet_mapping, config):
        simulator = PipelineSimulator(config.pe)
        result = simulator.run(lenet_mapping.schedule)
        assert result.initiation_interval_cycles >= config.pe.sampling_window

    def test_initiation_interval_at_least_busiest_pe(self, lenet_mapping, config):
        simulator = PipelineSimulator(config.pe)
        schedule = lenet_mapping.schedule
        busiest = max(simulator._pe_busy_cycles(schedule).values())
        result = simulator.run(schedule)
        assert result.initiation_interval_cycles >= busiest

    def test_no_double_booking(self, lenet_mapping, config):
        # run() raises if the initiation interval double-books a PE
        PipelineSimulator(config.pe).run(lenet_mapping.schedule, n_samples=16)

    def test_double_booked_schedule_raises(self, config):
        # a malformed schedule (overlapping ops on one PE within a single
        # sample) must be rejected regardless of the II
        from repro.mapper.schedule import Schedule, ScheduledOp

        schedule = Schedule(model="bad", window=4)
        schedule.ops["a"] = ScheduledOp(name="a", group="g", pe="pe0", start=0, end=8)
        schedule.ops["b"] = ScheduledOp(name="b", group="g", pe="pe0", start=4, end=12)
        with pytest.raises(RuntimeError, match="double-books PE pe0"):
            PipelineSimulator(config.pe).run(schedule, n_samples=4)

    def test_too_small_ii_raises(self, config, monkeypatch):
        # cross-sample overlap detection: force an II below a PE's busy
        # interval and the periodic check must catch sample 0 overlapping
        # a later sample
        from repro.mapper.schedule import Schedule, ScheduledOp

        schedule = Schedule(model="forced", window=2)
        schedule.ops["a"] = ScheduledOp(name="a", group="g", pe="pe0", start=0, end=10)
        monkeypatch.setattr(
            PipelineSimulator, "minimum_initiation_interval", lambda self, s: 5
        )
        with pytest.raises(RuntimeError, match="double-books PE pe0"):
            PipelineSimulator(config.pe).run(schedule, n_samples=16)

    def test_verification_cost_independent_of_n_samples(self, lenet_mapping, config):
        # the periodic check replaces the O(n_samples x ops) replay: a
        # million-sample run must return instantly with identical results
        import time

        simulator = PipelineSimulator(config.pe)
        small = simulator.run(lenet_mapping.schedule, n_samples=2)
        start = time.perf_counter()
        huge = simulator.run(lenet_mapping.schedule, n_samples=1_000_000)
        elapsed = time.perf_counter() - start
        assert elapsed < 1.0
        assert huge.initiation_interval_cycles == small.initiation_interval_cycles
        assert huge.makespan_cycles == small.makespan_cycles
        assert huge.total_cycles == (
            small.makespan_cycles + 999_999 * small.initiation_interval_cycles
        )

    def test_total_cycles_formula(self, lenet_mapping, config):
        result = PipelineSimulator(config.pe).run(lenet_mapping.schedule, n_samples=4)
        assert result.total_cycles == result.makespan_cycles + 3 * result.initiation_interval_cycles

    def test_throughput_and_latency_units(self, lenet_mapping, config):
        result = PipelineSimulator(config.pe).run(lenet_mapping.schedule)
        assert result.latency_us == pytest.approx(result.latency_ns / 1e3)
        assert result.throughput_samples_per_s > 0

    def test_simulated_throughput_matches_analytic(
        self, lenet_coreops, lenet_graph, lenet_mapping, config
    ):
        """Cross-validation: the event-level simulation and the analytic
        model should agree on LeNet's throughput within ~40%
        (the analytic model adds the routed communication latency that the
        cycle-level schedule does not carry)."""
        simulated = PipelineSimulator(config.pe).run(lenet_mapping.schedule)
        analytic = evaluate_design_point(
            lenet_coreops,
            lenet_mapping.allocation,
            lenet_graph.total_ops(),
            FPSAArchitecture(config),
            config=config,
        )
        ratio = simulated.throughput_samples_per_s / analytic.throughput_samples_per_s
        assert 0.6 < ratio < 2.5

    def test_invalid_sample_count(self, lenet_mapping, config):
        with pytest.raises(ValueError):
            PipelineSimulator(config.pe).run(lenet_mapping.schedule, n_samples=0)
