"""Tests of the cycle-level pipeline simulator."""

import pytest

from repro.perf.analytic import FPSAArchitecture, evaluate_design_point
from repro.perf.pipeline_sim import PipelineSimulator


class TestPipelineSimulator:
    def test_initiation_interval_at_least_window(self, lenet_mapping, config):
        simulator = PipelineSimulator(config.pe)
        result = simulator.run(lenet_mapping.schedule)
        assert result.initiation_interval_cycles >= config.pe.sampling_window

    def test_initiation_interval_at_least_busiest_pe(self, lenet_mapping, config):
        simulator = PipelineSimulator(config.pe)
        schedule = lenet_mapping.schedule
        busiest = max(simulator._pe_busy_cycles(schedule).values())
        result = simulator.run(schedule)
        assert result.initiation_interval_cycles >= busiest

    def test_no_double_booking(self, lenet_mapping, config):
        # run() raises if the initiation interval double-books a PE
        PipelineSimulator(config.pe).run(lenet_mapping.schedule, n_samples=16)

    def test_total_cycles_formula(self, lenet_mapping, config):
        result = PipelineSimulator(config.pe).run(lenet_mapping.schedule, n_samples=4)
        assert result.total_cycles == result.makespan_cycles + 3 * result.initiation_interval_cycles

    def test_throughput_and_latency_units(self, lenet_mapping, config):
        result = PipelineSimulator(config.pe).run(lenet_mapping.schedule)
        assert result.latency_us == pytest.approx(result.latency_ns / 1e3)
        assert result.throughput_samples_per_s > 0

    def test_simulated_throughput_matches_analytic(
        self, lenet_coreops, lenet_graph, lenet_mapping, config
    ):
        """Cross-validation: the event-level simulation and the analytic
        model should agree on LeNet's throughput within ~40%
        (the analytic model adds the routed communication latency that the
        cycle-level schedule does not carry)."""
        simulated = PipelineSimulator(config.pe).run(lenet_mapping.schedule)
        analytic = evaluate_design_point(
            lenet_coreops,
            lenet_mapping.allocation,
            lenet_graph.total_ops(),
            FPSAArchitecture(config),
            config=config,
        )
        ratio = simulated.throughput_samples_per_s / analytic.throughput_samples_per_s
        assert 0.6 < ratio < 2.5

    def test_invalid_sample_count(self, lenet_mapping, config):
        with pytest.raises(ValueError):
            PipelineSimulator(config.pe).run(lenet_mapping.schedule, n_samples=0)
