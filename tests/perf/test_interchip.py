"""The inter-chip link model (multi-chip partitioned deployments)."""

from __future__ import annotations

import pytest

from repro.arch.params import InterChipParams
from repro.perf.comm import InterChipLinkModel


@pytest.fixture
def link() -> InterChipLinkModel:
    return InterChipLinkModel(
        InterChipParams(
            link_bandwidth_bits_per_ns=10.0, link_latency_ns=50.0, links_per_chip=2
        ),
        value_bits=4,
    )


class TestHopLatency:
    def test_charges_framing_plus_serialisation(self, link):
        # 100 values x 4 bits / 10 bits-per-ns + 50 ns framing
        assert link.hop_latency_ns(100) == pytest.approx(50.0 + 40.0)

    def test_zero_traffic_is_free(self, link):
        assert link.hop_latency_ns(0) == 0.0


class TestSampleRateLimit:
    def test_no_cut_traffic_imposes_no_ceiling(self, link):
        assert link.sample_rate_limit({}) == float("inf")

    def test_busiest_pair_binds(self, link):
        limit = link.sample_rate_limit({(0, 1): 1000.0, (1, 2): 10.0})
        # 1000 values x 4 bits over 10 bits/ns
        assert limit == pytest.approx(10.0 * 1e9 / 4000.0)

    def test_chip_aggregate_shares_the_link_budget(self, link):
        # chip 0 fans out 3 x 1000 values but owns only 2 links: the
        # aggregate constraint (3000/2 = 1500 values through one link)
        # binds tighter than any single pair (1000 values)
        pairs = {(0, 1): 1000.0, (0, 2): 1000.0, (0, 3): 1000.0}
        limit = link.sample_rate_limit(pairs)
        assert limit == pytest.approx(10.0 * 1e9 / (1500.0 * 4))

    def test_full_duplex_aggregates_do_not_mix(self, link):
        # one chip sending 1000 and receiving 1000: full-duplex links keep
        # the directions independent, so the pair constraint (1000) binds,
        # not a mixed 2000/2 aggregate
        pairs = {(0, 1): 1000.0, (1, 0): 1000.0}
        limit = link.sample_rate_limit(pairs)
        assert limit == pytest.approx(10.0 * 1e9 / 4000.0)
