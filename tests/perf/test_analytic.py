"""Tests of the analytic pipelined performance model."""

import pytest

from repro.baselines.fp_prime import FPPrimeArchitecture
from repro.baselines.prime import PrimeArchitecture
from repro.mapper.allocation import allocate
from repro.perf.analytic import (
    FPSAArchitecture,
    estimate_block_counts,
    evaluate_design_point,
    pipeline_depth,
    sweep_area,
    traffic_values_per_sample,
)


class TestHelpers:
    def test_traffic_positive(self, vgg16_coreops):
        assert traffic_values_per_sample(vgg16_coreops) > 0

    def test_pipeline_depth_at_least_layer_count(self, mlp_coreops):
        # 3 dense + 2 reductions chained
        assert pipeline_depth(mlp_coreops) == 5

    def test_block_count_estimate_matches_netlist(self, lenet_coreops, config):
        from repro.mapper.netlist import build_netlist

        allocation = allocate(lenet_coreops, 4, config.pe)
        estimate = estimate_block_counts(lenet_coreops, allocation, config)
        netlist = build_netlist(lenet_coreops, allocation, config)
        assert estimate.n_pe == netlist.n_pe
        assert estimate.n_smb == netlist.n_smb


class TestEvaluateDesignPoint:
    def test_real_between_zero_and_ideal(self, vgg16_coreops, vgg16_graph, vgg16_allocation):
        report = evaluate_design_point(
            vgg16_coreops, vgg16_allocation, vgg16_graph.total_ops(), FPSAArchitecture()
        )
        assert 0 < report.real_ops <= report.ideal_ops <= report.peak_ops

    def test_fpsa_beats_prime_at_same_allocation(self, vgg16_coreops, vgg16_graph, vgg16_allocation):
        ops = vgg16_graph.total_ops()
        fpsa = evaluate_design_point(vgg16_coreops, vgg16_allocation, ops, FPSAArchitecture())
        prime = evaluate_design_point(vgg16_coreops, vgg16_allocation, ops, PrimeArchitecture())
        fp_prime = evaluate_design_point(
            vgg16_coreops, vgg16_allocation, ops, FPPrimeArchitecture()
        )
        # ordering of Figure 6: PRIME < FP-PRIME < FPSA
        assert prime.real_ops < fp_prime.real_ops < fpsa.real_ops

    def test_prime_is_communication_bound(self, vgg16_coreops, vgg16_graph, vgg16_allocation):
        report = evaluate_design_point(
            vgg16_coreops, vgg16_allocation, vgg16_graph.total_ops(), PrimeArchitecture()
        )
        assert report.latency_breakdown.communication_ns > report.latency_breakdown.computation_ns
        assert report.real_ops < 0.5 * report.ideal_ops

    def test_fp_prime_tracks_ideal(self, vgg16_coreops, vgg16_graph, vgg16_allocation):
        report = evaluate_design_point(
            vgg16_coreops, vgg16_allocation, vgg16_graph.total_ops(), FPPrimeArchitecture()
        )
        assert report.real_ops == pytest.approx(report.ideal_ops, rel=0.05)

    def test_vgg16_table3_ballpark(self, vgg16_coreops, vgg16_graph, vgg16_allocation):
        """Table 3: VGG16 at 64x duplication runs at ~2.4K samples/s on
        ~68 mm^2 with ~670 us latency; the reproduction should land within
        ~2x on every metric."""
        report = evaluate_design_point(
            vgg16_coreops, vgg16_allocation, vgg16_graph.total_ops(), FPSAArchitecture()
        )
        assert report.throughput_samples_per_s == pytest.approx(2400, rel=0.6)
        assert report.latency_us == pytest.approx(671.8, rel=0.6)
        assert report.area_mm2 == pytest.approx(68.09, rel=0.6)

    def test_duplication_raises_throughput(self, vgg16_coreops, vgg16_graph, config):
        ops = vgg16_graph.total_ops()
        low = evaluate_design_point(
            vgg16_coreops, allocate(vgg16_coreops, 1, config.pe), ops, FPSAArchitecture()
        )
        high = evaluate_design_point(
            vgg16_coreops, allocate(vgg16_coreops, 16, config.pe), ops, FPSAArchitecture()
        )
        assert high.throughput_samples_per_s > 10 * low.throughput_samples_per_s

    def test_replication_scales_small_models(self, mlp_coreops, mlp_graph, config):
        ops = mlp_graph.total_ops()
        balanced = allocate(mlp_coreops, mlp_coreops.max_reuse_degree, config.pe)
        replicated = allocate(mlp_coreops, 8 * mlp_coreops.max_reuse_degree, config.pe)
        a = evaluate_design_point(mlp_coreops, balanced, ops, FPSAArchitecture())
        b = evaluate_design_point(mlp_coreops, replicated, ops, FPSAArchitecture())
        # 8 replicas process 8 samples in parallel; the slightly longer
        # routed paths of the larger chip absorb a little of the gain.
        ratio = b.throughput_samples_per_s / a.throughput_samples_per_s
        assert 5.0 < ratio <= 8.0

    def test_extra_pes_raise_peak_only(self, mlp_coreops, mlp_graph, mlp_allocation):
        ops = mlp_graph.total_ops()
        base = evaluate_design_point(mlp_coreops, mlp_allocation, ops, FPSAArchitecture())
        padded = evaluate_design_point(
            mlp_coreops, mlp_allocation, ops, FPSAArchitecture(), n_pe_total=1000
        )
        assert padded.peak_ops > base.peak_ops
        assert padded.real_ops == pytest.approx(base.real_ops)


class TestSweepArea:
    def test_unmappable_below_minimum_storage(self, vgg16_coreops, vgg16_graph):
        points = sweep_area(vgg16_coreops, vgg16_graph.total_ops(), FPSAArchitecture(), [1.0])
        assert not points[0].mapped
        assert points[0].real_ops == 0.0

    def test_real_monotone_non_decreasing_for_fpsa(self, vgg16_coreops, vgg16_graph):
        areas = [60.0, 120.0, 500.0, 2000.0]
        points = sweep_area(vgg16_coreops, vgg16_graph.total_ops(), FPSAArchitecture(), areas)
        reals = [p.real_ops for p in points if p.mapped]
        assert all(b >= a * 0.95 for a, b in zip(reals, reals[1:], strict=False))

    def test_prime_real_saturates(self, vgg16_coreops, vgg16_graph):
        areas = [100.0, 1000.0, 10000.0]
        points = sweep_area(vgg16_coreops, vgg16_graph.total_ops(), PrimeArchitecture(), areas)
        assert points[-1].real_ops == pytest.approx(points[-2].real_ops, rel=0.05)
        assert points[-1].ideal_ops > 10 * points[-1].real_ops

    def test_peak_scales_linearly_with_area(self, vgg16_coreops, vgg16_graph):
        points = sweep_area(
            vgg16_coreops, vgg16_graph.total_ops(), FPSAArchitecture(), [100.0, 200.0]
        )
        assert points[1].peak_ops == pytest.approx(2 * points[0].peak_ops, rel=0.02)
