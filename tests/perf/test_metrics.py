"""Tests of the performance metric containers."""

import pytest

from repro.perf.metrics import LatencyBreakdown, PerformanceReport, geometric_mean


def make_report(**overrides) -> PerformanceReport:
    defaults = dict(
        model="m", architecture="FPSA", area_mm2=10.0,
        throughput_samples_per_s=1000.0, latency_us=100.0,
        ops_per_sample=1e9, peak_ops=1e14, ideal_ops=5e13, real_ops=1e13,
        latency_breakdown=LatencyBreakdown(100.0, 300.0), n_pe=100,
    )
    defaults.update(overrides)
    return PerformanceReport(**defaults)


class TestLatencyBreakdown:
    def test_total_and_fraction(self):
        breakdown = LatencyBreakdown(100.0, 300.0)
        assert breakdown.total_ns == 400.0
        assert breakdown.communication_fraction == pytest.approx(0.75)

    def test_zero_total(self):
        assert LatencyBreakdown(0.0, 0.0).communication_fraction == 0.0


class TestPerformanceReport:
    def test_density_and_utilization(self):
        report = make_report()
        assert report.computational_density_ops_per_mm2 == pytest.approx(1e12)
        assert report.peak_density_ops_per_mm2 == pytest.approx(1e13)
        assert report.utilization == pytest.approx(0.1)

    def test_zero_area_guard(self):
        report = make_report(area_mm2=0.0)
        assert report.computational_density_ops_per_mm2 == 0.0

    def test_speedup_over(self):
        fast = make_report(real_ops=4e13)
        slow = make_report(real_ops=1e13)
        assert fast.speedup_over(slow) == pytest.approx(4.0)
        assert fast.speedup_over(make_report(real_ops=0.0)) == float("inf")


class TestGeometricMean:
    def test_values(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert geometric_mean([3.0]) == pytest.approx(3.0)

    def test_invalid(self):
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])
