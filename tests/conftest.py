"""Shared fixtures for the test suite.

Expensive objects (synthesized core-op graphs of the benchmark models) are
session-scoped so the many tests that need them pay the construction cost
only once.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import settings

from repro.arch.params import FPSAConfig

# Deterministic hypothesis profile, pinned for CI: derandomize makes every
# run explore the same examples (no flaky shrink sessions on shared
# runners), deadline=None tolerates slow CI machines.  Select with
# HYPOTHESIS_PROFILE=dev for randomized local exploration.
settings.register_profile("ci", derandomize=True, deadline=None)
settings.register_profile("dev", deadline=None)
_hypothesis_profile = os.environ.get("HYPOTHESIS_PROFILE", "ci")
settings.load_profile(_hypothesis_profile)
# publish the resolved profile so everything downstream of the same knob —
# in particular repro.fuzz.campaign.default_campaign_seed(), which pins
# campaign seed 0 under the derandomized 'ci' profile — agrees with
# hypothesis on whether this run is derandomized
os.environ["HYPOTHESIS_PROFILE"] = _hypothesis_profile
from repro.mapper.allocation import allocate
from repro.mapper.mapper import SpatialTemporalMapper
from repro.models import build_lenet, build_mlp_500_100, build_vgg16
from repro.synthesizer.synthesizer import synthesize


@pytest.fixture(scope="session")
def config() -> FPSAConfig:
    return FPSAConfig()


@pytest.fixture(scope="session")
def mlp_graph():
    return build_mlp_500_100()


@pytest.fixture(scope="session")
def lenet_graph():
    return build_lenet()


@pytest.fixture(scope="session")
def vgg16_graph():
    return build_vgg16()


@pytest.fixture(scope="session")
def mlp_coreops(mlp_graph):
    return synthesize(mlp_graph)


@pytest.fixture(scope="session")
def lenet_coreops(lenet_graph):
    return synthesize(lenet_graph)


@pytest.fixture(scope="session")
def vgg16_coreops(vgg16_graph):
    return synthesize(vgg16_graph)


@pytest.fixture(scope="session")
def lenet_mapping(lenet_coreops, config):
    mapper = SpatialTemporalMapper(config)
    return mapper.map(lenet_coreops, duplication_degree=4, detailed_schedule=True)


@pytest.fixture(scope="session")
def mlp_allocation(mlp_coreops, config):
    return allocate(mlp_coreops, duplication_degree=2, pe=config.pe)


@pytest.fixture(scope="session")
def vgg16_allocation(vgg16_coreops, config):
    return allocate(vgg16_coreops, duplication_degree=64, pe=config.pe)
