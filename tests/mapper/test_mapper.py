"""Tests of the end-to-end spatial-to-temporal mapper."""

import pytest

from repro.mapper.mapper import SpatialTemporalMapper


class TestSpatialTemporalMapper:
    def test_mapping_result_fields(self, lenet_mapping, lenet_coreops):
        assert lenet_mapping.model == "LeNet"
        assert lenet_mapping.duplication_degree == 4
        assert lenet_mapping.netlist.n_pe == lenet_mapping.allocation.total_pes
        assert lenet_mapping.control.clbs_needed == lenet_mapping.netlist.n_clb
        assert lenet_mapping.schedule is not None

    def test_detailed_schedule_optional(self, mlp_coreops, config):
        mapper = SpatialTemporalMapper(config)
        result = mapper.map(mlp_coreops, duplication_degree=2)
        assert result.schedule is None

    def test_pe_budget_mapping(self, lenet_coreops, config):
        mapper = SpatialTemporalMapper(config)
        budget = 3 * lenet_coreops.min_pes()
        result = mapper.map(lenet_coreops, pe_budget=budget)
        assert result.netlist.n_pe <= budget
        assert result.duplication_degree >= 1

    def test_pe_budget_too_small_raises(self, lenet_coreops, config):
        mapper = SpatialTemporalMapper(config)
        with pytest.raises(ValueError):
            mapper.map(lenet_coreops, pe_budget=1)

    def test_chip_area_positive(self, lenet_mapping, config):
        assert lenet_mapping.chip_area_mm2(config) > 0

    def test_summary_mentions_blocks(self, lenet_mapping):
        text = lenet_mapping.summary()
        assert "PEs" in text
        assert "duplication degree 4" in text

    def test_schedule_reuse_cap(self, vgg16_coreops, config):
        mapper = SpatialTemporalMapper(config)
        result = mapper.map(
            vgg16_coreops, duplication_degree=1, detailed_schedule=True, max_schedule_reuse=1
        )
        assert result.schedule is not None
        assert len(result.schedule.ops) > 0
