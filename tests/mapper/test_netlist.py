"""Tests of the function-block netlist builder."""

import pytest

from repro.mapper.allocation import allocate
from repro.mapper.netlist import Block, BlockType, FunctionBlockNetlist, Net, build_netlist
from repro.synthesizer.coreop import CoreOpGraph, WeightGroup


class TestNetlistDataModel:
    def test_block_type_validated(self):
        with pytest.raises(ValueError):
            Block(name="x", type="GPU")

    def test_net_requires_sinks_and_bits(self):
        with pytest.raises(ValueError):
            Net(name="n", driver="a", sinks=())
        with pytest.raises(ValueError):
            Net(name="n", driver="a", sinks=("b",), bits=0)

    def test_duplicate_block_rejected(self):
        netlist = FunctionBlockNetlist("m")
        netlist.add_block(Block("a", BlockType.PE))
        with pytest.raises(ValueError):
            netlist.add_block(Block("a", BlockType.PE))

    def test_net_references_checked(self):
        netlist = FunctionBlockNetlist("m")
        netlist.add_block(Block("a", BlockType.PE))
        with pytest.raises(ValueError):
            netlist.add_net(Net("n", driver="a", sinks=("ghost",)))

    def test_counters(self):
        netlist = FunctionBlockNetlist("m")
        netlist.add_block(Block("pe0", BlockType.PE))
        netlist.add_block(Block("smb0", BlockType.SMB))
        netlist.add_block(Block("clb0", BlockType.CLB))
        assert netlist.n_pe == 1
        assert netlist.n_smb == 1
        assert netlist.n_clb == 1
        assert "1 PEs" in netlist.summary()


class TestBuildNetlist:
    def test_pe_count_matches_allocation(self, lenet_coreops, config):
        allocation = allocate(lenet_coreops, 4, config.pe)
        netlist = build_netlist(lenet_coreops, allocation, config)
        assert netlist.n_pe == allocation.total_pes

    def test_io_blocks_present(self, mlp_coreops, config):
        allocation = allocate(mlp_coreops, 1, config.pe)
        netlist = build_netlist(mlp_coreops, allocation, config)
        assert "__input__" in netlist.blocks
        assert "__output__" in netlist.blocks

    def test_every_net_endpoint_exists(self, lenet_coreops, config):
        allocation = allocate(lenet_coreops, 2, config.pe)
        netlist = build_netlist(lenet_coreops, allocation, config)
        for net in netlist.nets:
            assert net.driver in netlist.blocks
            assert all(s in netlist.blocks for s in net.sinks)

    def test_buffers_inserted_for_iterating_groups(self, lenet_coreops, config):
        allocation = allocate(lenet_coreops, 1, config.pe)
        netlist = build_netlist(lenet_coreops, allocation, config)
        assert netlist.n_smb > 0

    def test_clb_count_override(self, mlp_coreops, config):
        allocation = allocate(mlp_coreops, 1, config.pe)
        netlist = build_netlist(mlp_coreops, allocation, config, clb_blocks=7)
        assert netlist.n_clb == 7

    def test_replication_multiplies_pe_blocks(self):
        g = CoreOpGraph("rep")
        g.add_group(WeightGroup("only", "only", "matmul", 64, 64, 2, macs_per_instance=4096))
        allocation = allocate(g, 8)  # replication 4
        assert allocation.replication == 4
        netlist = build_netlist(g, allocation)
        assert netlist.n_pe == allocation.total_pes
        assert any(b.name.startswith("rep3::") for b in netlist.blocks.values())

    def test_chip_area_positive_and_scales(self, lenet_coreops, config):
        small = build_netlist(lenet_coreops, allocate(lenet_coreops, 1, config.pe), config)
        large = build_netlist(lenet_coreops, allocate(lenet_coreops, 8, config.pe), config)
        assert 0 < small.chip_area_mm2(config) < large.chip_area_mm2(config)
