"""Tests of PE resource allocation (duplication degrees, Section 5.2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mapper.allocation import (
    AllocationResult,
    GroupAllocation,
    allocate,
    allocate_for_pe_budget,
)
from repro.synthesizer.coreop import CoreOpGraph, WeightGroup


def graph_with_reuses(reuses: list[int]) -> CoreOpGraph:
    g = CoreOpGraph("synthetic")
    for i, reuse in enumerate(reuses):
        g.add_group(
            WeightGroup(
                name=f"g{i}", source=f"g{i}", kind="matmul",
                rows=256, cols=256, reuse=reuse, macs_per_instance=256 * 256,
            )
        )
    return g


class TestGroupAllocation:
    def test_iterations(self):
        alloc = GroupAllocation(group="g", tiles=2, duplication=4, reuse=10)
        assert alloc.pes == 8
        assert alloc.iterations == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            GroupAllocation("g", tiles=0, duplication=1, reuse=1)
        with pytest.raises(ValueError):
            GroupAllocation("g", tiles=1, duplication=5, reuse=2)


class TestAllocate:
    def test_duplication_one_gives_min_pes(self, lenet_coreops):
        allocation = allocate(lenet_coreops, 1)
        assert allocation.total_pes == lenet_coreops.min_pes()
        assert allocation.replication == 1

    def test_bottleneck_gets_full_duplication(self):
        g = graph_with_reuses([100, 10, 1])
        allocation = allocate(g, 4)
        assert allocation.allocation("g0").duplication == 4
        assert allocation.max_iterations == 25

    def test_other_groups_balanced_to_bottleneck(self):
        g = graph_with_reuses([100, 10, 1])
        allocation = allocate(g, 4)
        # target iterations = 25, so g1 (reuse 10) needs only 1 duplicate
        assert allocation.allocation("g1").duplication == 1
        assert allocation.allocation("g1").iterations <= 25

    def test_duplication_capped_at_reuse(self):
        g = graph_with_reuses([4])
        allocation = allocate(g, 100)
        assert allocation.allocation("g0").duplication == 4
        assert allocation.max_iterations == 1

    def test_replication_for_surplus_duplication(self):
        g = graph_with_reuses([4])
        allocation = allocate(g, 16)
        assert allocation.replication == 4
        assert allocation.total_pes == 4 * allocation.pes_per_replica

    def test_no_replication_when_reuse_not_exhausted(self, vgg16_coreops):
        allocation = allocate(vgg16_coreops, 64)
        assert allocation.replication == 1

    def test_temporal_utilization_increases_with_duplication(self, vgg16_coreops):
        low = allocate(vgg16_coreops, 1).temporal_utilization()
        high = allocate(vgg16_coreops, 64).temporal_utilization()
        assert 0 < low < high <= 1.0

    def test_mlp_temporal_utilization_high(self, mlp_coreops):
        """No weight sharing in the dense layers: utilization is already
        reasonable at duplication 1 and reaches ~1 once the small reduction
        imbalance is duplicated away."""
        balanced = allocate(mlp_coreops, mlp_coreops.max_reuse_degree)
        assert balanced.temporal_utilization() == pytest.approx(1.0, abs=0.05)

    def test_invalid_duplication(self, mlp_coreops):
        with pytest.raises(ValueError):
            allocate(mlp_coreops, 0)

    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError):
            allocate(CoreOpGraph("empty"), 1)

    @given(dup=st.integers(min_value=1, max_value=512))
    @settings(max_examples=20, deadline=None)
    def test_iterations_shrink_monotonically(self, dup):
        g = graph_with_reuses([257, 31, 5])
        base = allocate(g, 1).max_iterations
        assert allocate(g, dup).max_iterations <= base

    @given(dup=st.integers(min_value=1, max_value=128))
    @settings(max_examples=20, deadline=None)
    def test_total_pes_monotone_in_duplication(self, dup):
        g = graph_with_reuses([300, 40, 7, 1])
        assert allocate(g, dup).total_pes <= allocate(g, dup + 1).total_pes


class TestAllocateForBudget:
    def test_budget_below_minimum_returns_none(self, lenet_coreops):
        assert allocate_for_pe_budget(lenet_coreops, lenet_coreops.min_pes() - 1) is None
        assert allocate_for_pe_budget(lenet_coreops, 0) is None

    def test_budget_respected(self, vgg16_coreops):
        budget = 2 * vgg16_coreops.min_pes()
        allocation = allocate_for_pe_budget(vgg16_coreops, budget)
        assert allocation is not None
        assert allocation.total_pes <= budget

    def test_larger_budget_never_slower(self, lenet_coreops):
        small = allocate_for_pe_budget(lenet_coreops, 30)
        large = allocate_for_pe_budget(lenet_coreops, 300)
        assert small is not None and large is not None
        small_rate = small.replication / small.max_iterations
        large_rate = large.replication / large.max_iterations
        assert large_rate >= small_rate

    def test_budget_exploits_replication(self, mlp_coreops):
        generous = allocate_for_pe_budget(mlp_coreops, 50 * mlp_coreops.min_pes())
        assert generous is not None
        assert generous.replication > 1
