"""Tests of the Algorithm-1 scheduler and its constraint system."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mapper.allocation import allocate
from repro.mapper.schedule import (
    assign_pes,
    schedule_instances,
    validate_schedule,
)
from repro.synthesizer.coreop import CoreOpGraph, WeightGroup


def chain_graph(reuses: list[int], rows: int = 256) -> CoreOpGraph:
    """A linear chain of groups with the given reuse degrees."""
    g = CoreOpGraph("chain")
    previous = None
    for i, reuse in enumerate(reuses):
        g.add_group(
            WeightGroup(
                name=f"g{i}", source=f"g{i}", kind="matmul",
                rows=rows, cols=128, reuse=reuse, macs_per_instance=rows * 128,
            )
        )
        if previous is not None:
            g.add_edge(previous, f"g{i}", rows)
        previous = f"g{i}"
    return g


class TestAssignPes:
    def test_round_robin_over_duplicates(self):
        g = chain_graph([4])
        allocation = allocate(g, 2)
        instances = g.expand()
        assignment = assign_pes(instances, allocation)
        pes = set(assignment.values())
        assert len(pes) == 2  # one tile x two duplicates

    def test_every_instance_assigned(self, lenet_coreops):
        allocation = allocate(lenet_coreops, 2)
        instances = lenet_coreops.expand()
        assignment = assign_pes(instances, allocation)
        assert set(assignment) == set(instances.instances)


class TestScheduleInstances:
    def test_all_constraints_hold_for_chain(self):
        g = chain_graph([8, 4, 1])
        allocation = allocate(g, 2)
        instances = g.expand()
        schedule = schedule_instances(instances, allocation, window=64)
        assert validate_schedule(schedule, instances) == []

    def test_all_constraints_hold_for_lenet(self, lenet_mapping, lenet_coreops):
        instances = lenet_coreops.expand()
        assert validate_schedule(lenet_mapping.schedule, instances) == []

    def test_sampling_window_respected(self):
        g = chain_graph([2])
        allocation = allocate(g, 1)
        schedule = schedule_instances(g.expand(), allocation, window=32)
        assert all(op.duration >= 32 for op in schedule.ops.values())

    def test_resource_conflict_serializes_same_pe(self):
        g = chain_graph([4])
        allocation = allocate(g, 1)  # one PE, four reuse positions
        schedule = schedule_instances(g.expand(), allocation, window=64)
        intervals = schedule.pe_intervals()
        assert len(intervals) == 1
        spans = next(iter(intervals.values()))
        for (s1, e1), (s2, e2) in zip(spans, spans[1:], strict=False):
            assert s2 >= e1

    def test_duplication_enables_parallelism(self):
        g = chain_graph([8])
        serial = schedule_instances(g.expand(), allocate(g, 1), window=64)
        parallel = schedule_instances(g.expand(), allocate(g, 4), window=64)
        assert parallel.makespan < serial.makespan

    def test_buffers_inserted_for_time_multiplexed_consumers(self):
        # producer with reuse 1 feeding a consumer with reuse 4 on one PE:
        # the later consumer iterations cannot stream and need buffers.
        g = CoreOpGraph("buffered")
        g.add_group(WeightGroup("p", "p", "matmul", 64, 64, 1, macs_per_instance=64 * 64))
        g.add_group(WeightGroup("c", "c", "matmul", 64, 64, 4, macs_per_instance=64 * 64))
        g.add_edge("p", "c", 64)
        allocation = allocate(g, 1)
        schedule = schedule_instances(g.expand(), allocation, window=64)
        assert schedule.n_buffers >= 3
        assert validate_schedule(schedule, g.expand()) == []

    def test_streaming_chain_needs_no_buffers(self):
        g = chain_graph([1, 1, 1])
        allocation = allocate(g, 1)
        schedule = schedule_instances(g.expand(), allocation, window=64)
        assert schedule.n_buffers == 0
        assert schedule.makespan <= 3 * 64 + 8

    def test_invalid_window_rejected(self):
        g = chain_graph([1])
        with pytest.raises(ValueError):
            schedule_instances(g.expand(), allocate(g, 1), window=0)

    def test_pe_utilization_in_range(self, lenet_mapping):
        utilization = lenet_mapping.schedule.pe_utilization()
        assert 0.0 < utilization <= 1.0

    @given(
        reuses=st.lists(st.integers(min_value=1, max_value=12), min_size=1, max_size=5),
        duplication=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=25, deadline=None)
    def test_schedule_constraints_property(self, reuses, duplication):
        """Property: for arbitrary chains and duplication degrees, the
        greedy scheduler always produces a constraint-satisfying schedule."""
        g = chain_graph(reuses)
        allocation = allocate(g, duplication)
        instances = g.expand()
        schedule = schedule_instances(instances, allocation, window=16)
        assert validate_schedule(schedule, instances) == []
        assert len(schedule.ops) == len(instances)


class TestValidateSchedule:
    def test_detects_sampling_window_violation(self):
        g = chain_graph([1])
        allocation = allocate(g, 1)
        instances = g.expand()
        schedule = schedule_instances(instances, allocation, window=64)
        # corrupt the schedule
        name = next(iter(schedule.ops))
        op = schedule.ops[name]
        schedule.ops[name] = type(op)(op.name, op.group, op.pe, op.start, op.start + 1)
        assert any("SW" in v for v in validate_schedule(schedule, instances))

    def test_detects_resource_conflict(self):
        g = chain_graph([2])
        allocation = allocate(g, 1)
        instances = g.expand()
        schedule = schedule_instances(instances, allocation, window=64)
        names = list(schedule.ops)
        first = schedule.ops[names[0]]
        second = schedule.ops[names[1]]
        schedule.ops[names[1]] = type(second)(
            second.name, second.group, first.pe, first.start, first.end
        )
        violations = validate_schedule(schedule, instances)
        assert any("RC" in v for v in violations)
