"""Tests of the control-logic planner."""

from repro.mapper.allocation import allocate
from repro.mapper.control import plan_control
from repro.mapper.netlist import build_netlist


class TestPlanControl:
    def test_window_counter_per_pe(self, lenet_coreops, config):
        allocation = allocate(lenet_coreops, 2, config.pe)
        netlist = build_netlist(lenet_coreops, allocation, config)
        plan = plan_control(allocation, netlist, config)
        assert plan.window_counters == netlist.n_pe

    def test_iteration_counters_only_for_multi_iteration_groups(self, mlp_coreops, config):
        # at maximum duplication every group runs a single iteration
        allocation = allocate(mlp_coreops, mlp_coreops.max_reuse_degree, config.pe)
        netlist = build_netlist(mlp_coreops, allocation, config)
        plan = plan_control(allocation, netlist, config)
        assert plan.iteration_counters == 0

    def test_buffer_counters_match_smbs(self, lenet_coreops, config):
        allocation = allocate(lenet_coreops, 2, config.pe)
        netlist = build_netlist(lenet_coreops, allocation, config)
        plan = plan_control(allocation, netlist, config)
        assert plan.buffer_counters == netlist.n_smb

    def test_clbs_cover_luts(self, lenet_coreops, config):
        allocation = allocate(lenet_coreops, 2, config.pe)
        netlist = build_netlist(lenet_coreops, allocation, config)
        plan = plan_control(allocation, netlist, config)
        assert plan.clbs_needed * config.clb.luts_per_clb >= plan.luts_total
        assert plan.luts_total > 0

    def test_counters_total(self, lenet_coreops, config):
        allocation = allocate(lenet_coreops, 2, config.pe)
        netlist = build_netlist(lenet_coreops, allocation, config)
        plan = plan_control(allocation, netlist, config)
        assert plan.counters_total == (
            plan.window_counters + plan.iteration_counters + plan.buffer_counters
        )

    def test_more_duplication_means_more_control(self, lenet_coreops, config):
        small_alloc = allocate(lenet_coreops, 1, config.pe)
        big_alloc = allocate(lenet_coreops, 8, config.pe)
        small = plan_control(small_alloc, build_netlist(lenet_coreops, small_alloc, config), config)
        big = plan_control(big_alloc, build_netlist(lenet_coreops, big_alloc, config), config)
        assert big.luts_total > small.luts_total
