"""Tests of the cycle-level spiking PE model (Equation 6 equivalence)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.spiking import (
    IFNeuron,
    SpikeSubtracter,
    SpikeTrain,
    SpikingCrossbarPE,
    decode_from_counts,
    encode_to_counts,
)


class TestEncoding:
    def test_encode_decode_roundtrip(self):
        values = np.array([0.0, 0.25, 0.5, 1.0])
        counts = encode_to_counts(values, 64)
        np.testing.assert_array_equal(counts, [0, 16, 32, 64])
        np.testing.assert_allclose(decode_from_counts(counts, 64), values)

    def test_encode_clips_out_of_range(self):
        counts = encode_to_counts(np.array([-1.0, 2.0]), 32)
        np.testing.assert_array_equal(counts, [0, 32])

    def test_decode_rejects_bad_window(self):
        with pytest.raises(ValueError):
            decode_from_counts(np.array([1]), 0)

    @given(st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=50, deadline=None)
    def test_encoding_error_bounded_by_half_lsb(self, value):
        window = 64
        count = encode_to_counts(np.array([value]), window)[0]
        assert abs(count / window - value) <= 0.5 / window + 1e-12


class TestSpikeTrain:
    def test_from_count_has_exact_count(self):
        for count in range(0, 65, 7):
            train = SpikeTrain.from_count(count, 64)
            assert train.count() == count
            assert train.window == 64

    def test_from_count_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            SpikeTrain.from_count(65, 64)
        with pytest.raises(ValueError):
            SpikeTrain.from_count(-1, 64)

    def test_from_counts_bundle(self):
        counts = np.array([0, 5, 64])
        train = SpikeTrain.from_counts(counts, 64)
        np.testing.assert_array_equal(train.count(), counts)

    def test_spikes_are_spread_over_window(self):
        train = SpikeTrain.from_count(4, 64)
        positions = np.flatnonzero(train.spikes)
        gaps = np.diff(positions)
        assert gaps.min() >= 8  # evenly spread, not bunched at the start


class TestIFNeuron:
    def test_fires_at_threshold(self):
        neuron = IFNeuron(threshold=1.0)
        assert neuron.step(0.6) is False
        assert neuron.step(0.6) is True
        assert neuron.spikes_emitted == 1
        assert neuron.state == pytest.approx(0.2)

    def test_reset_clears_state(self):
        neuron = IFNeuron(threshold=1.0)
        neuron.step(2.5)
        neuron.reset()
        assert neuron.state == 0.0
        assert neuron.spikes_emitted == 0

    def test_rejects_invalid_inputs(self):
        with pytest.raises(ValueError):
            IFNeuron(threshold=0.0)
        with pytest.raises(ValueError):
            IFNeuron(threshold=1.0).step(-0.1)

    def test_total_charge_conserved(self):
        neuron = IFNeuron(threshold=1.0)
        rng = np.random.default_rng(0)
        charges = rng.uniform(0, 0.9, size=200)
        for c in charges:
            neuron.step(float(c))
        recovered = neuron.spikes_emitted + neuron.state
        assert recovered == pytest.approx(charges.sum(), rel=1e-9)


class TestSpikeSubtracter:
    def test_blocks_positive_spikes(self):
        sub = SpikeSubtracter()
        sub.step(False, True)   # negative arrives first
        assert sub.step(True, False) is False  # blocked
        assert sub.step(True, False) is True
        assert sub.output_spikes == 1

    def test_no_negative_passes_all(self):
        sub = SpikeSubtracter()
        outputs = [sub.step(True, False) for _ in range(5)]
        assert all(outputs)
        assert sub.output_spikes == 5

    def test_reset(self):
        sub = SpikeSubtracter()
        sub.step(True, True)
        sub.reset()
        assert sub.pending_blocks == 0
        assert sub.output_spikes == 0


class TestSpikingCrossbarPE:
    def test_requires_2d_weights(self):
        with pytest.raises(ValueError):
            SpikingCrossbarPE(np.zeros(3), window=16)

    def test_positive_weights_match_reference(self):
        rng = np.random.default_rng(1)
        weights = rng.uniform(0, 0.02, size=(8, 4))
        pe = SpikingCrossbarPE(weights, window=64)
        counts = rng.integers(0, 65, size=8)
        out = pe.run(counts)
        reference = pe.reference(counts)
        assert np.all(np.abs(out - reference) <= 1)

    def test_negative_weights_relu_behaviour(self):
        # a column whose net weight is negative must output zero spikes
        weights = np.array([[0.5, -0.5]])
        pe = SpikingCrossbarPE(weights, window=64)
        out = pe.run(np.array([32]))
        assert out[1] == 0
        assert out[0] == pytest.approx(16, abs=1)

    def test_output_saturates_at_window(self):
        weights = np.array([[2.0]])
        pe = SpikingCrossbarPE(weights, window=32)
        out = pe.run(np.array([32]))
        assert out[0] == 32

    def test_zero_input_gives_zero_output(self):
        weights = np.random.default_rng(0).uniform(-1, 1, size=(6, 6))
        pe = SpikingCrossbarPE(weights, window=64)
        assert np.all(pe.run(np.zeros(6, dtype=int)) == 0)

    def test_input_shape_validated(self):
        pe = SpikingCrossbarPE(np.ones((4, 2)) * 0.1, window=16)
        with pytest.raises(ValueError):
            pe.run(np.zeros(3, dtype=int))

    @given(
        rows=st.integers(min_value=1, max_value=6),
        cols=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=25, deadline=None)
    def test_equation6_equivalence_property(self, rows, cols, seed):
        """Property (Equation 6): the spiking circuit computes
        ReLU(W^T X) on spike counts, up to +-1 count of quantisation."""
        rng = np.random.default_rng(seed)
        window = 64
        # keep |W^T X| comfortably below the window so saturation is not hit
        weights = rng.uniform(-1.0, 1.0, size=(rows, cols)) / (rows * window) * 20
        counts = rng.integers(0, window + 1, size=rows)
        pe = SpikingCrossbarPE(weights, window=window)
        out = pe.run(counts)
        reference = pe.reference(counts)
        assert np.all(np.abs(out.astype(int) - reference.astype(int)) <= 1)

    def test_spike_count_monotone_in_input(self):
        """More input spikes can only produce more output spikes for
        non-negative weights."""
        weights = np.full((4, 2), 0.01)
        pe = SpikingCrossbarPE(weights, window=64)
        low = pe.run(np.array([8, 8, 8, 8]))
        high = pe.run(np.array([32, 32, 32, 32]))
        assert np.all(high >= low)
