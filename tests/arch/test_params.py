"""Tests of the Table-1 hardware parameters and derived quantities."""

import math

import pytest

from repro.arch.params import (
    BlockParams,
    CLBParams,
    FPSAConfig,
    PEParams,
    PrimePEParams,
    RoutingParams,
    SMBParams,
)


class TestBlockParams:
    def test_area_mm2_conversion(self):
        block = BlockParams(energy_pj=1.0, area_um2=1e6, latency_ns=1.0)
        assert block.area_mm2 == pytest.approx(1.0)

    def test_scaled_multiplies_area_and_energy(self):
        block = BlockParams(2.0, 10.0, 3.0)
        scaled = block.scaled(4)
        assert scaled.energy_pj == pytest.approx(8.0)
        assert scaled.area_um2 == pytest.approx(40.0)
        assert scaled.latency_ns == pytest.approx(3.0)

    def test_scaled_rejects_negative_count(self):
        with pytest.raises(ValueError):
            BlockParams(1.0, 1.0, 1.0).scaled(-1)


class TestPEParams:
    def test_published_table1_values(self):
        pe = PEParams()
        assert pe.block.energy_pj == pytest.approx(29.094)
        assert pe.block.area_um2 == pytest.approx(22051.414)
        assert pe.block.latency_ns == pytest.approx(2.443)

    def test_sampling_window_from_io_bits(self):
        assert PEParams().sampling_window == 64
        assert PEParams(io_bits=4).sampling_window == 16

    def test_vmm_latency_matches_table2(self):
        # 64 cycles x 2.443 ns = 156.4 ns (Table 2 FPSA latency)
        assert PEParams().vmm_latency_ns == pytest.approx(156.4, rel=0.01)

    def test_computational_density_matches_table2(self):
        # Table 2 reports 38.004 TOPS/mm^2 for the FPSA PE
        density = PEParams().computational_density_ops_per_mm2
        assert density == pytest.approx(38.004e12, rel=0.01)

    def test_weights_and_ops_per_pe(self):
        pe = PEParams()
        assert pe.weights_per_pe == 256 * 256
        assert pe.ops_per_vmm == 2 * 256 * 256

    def test_physical_columns_must_be_twice_logical(self):
        with pytest.raises(ValueError):
            PEParams(physical_cols=300, logical_cols=256)

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ValueError):
            PEParams(rows=0, physical_cols=0, logical_cols=0)

    def test_replace_creates_modified_copy(self):
        pe = PEParams().replace(io_bits=4)
        assert pe.io_bits == 4
        assert PEParams().io_bits == 6

    def test_component_area_close_to_block_area(self):
        pe = PEParams()
        component = pe.components.component_area_um2()
        assert component < pe.block.area_um2
        assert component > 0.95 * pe.block.area_um2

    def test_component_latency_close_to_cycle(self):
        pe = PEParams()
        assert pe.components.cycle_latency_ns() == pytest.approx(pe.cycle_ns, rel=0.01)

    def test_energy_per_vmm_scales_with_window(self):
        pe = PEParams()
        assert pe.energy_per_vmm_pj == pytest.approx(pe.block.energy_pj * 64)


class TestSMBParams:
    def test_capacity_in_values(self):
        smb = SMBParams()
        assert smb.capacity_bits == 16 * 1024
        assert smb.values_capacity(6) == (16 * 1024) // 6

    def test_blocks_for_values(self):
        smb = SMBParams()
        per_block = smb.values_capacity(6)
        assert smb.blocks_for_values(0, 6) == 0
        assert smb.blocks_for_values(1, 6) == 1
        assert smb.blocks_for_values(per_block, 6) == 1
        assert smb.blocks_for_values(per_block + 1, 6) == 2

    def test_invalid_inputs_rejected(self):
        smb = SMBParams()
        with pytest.raises(ValueError):
            smb.values_capacity(0)
        with pytest.raises(ValueError):
            smb.blocks_for_values(-1, 6)


class TestCLBParams:
    def test_published_values(self):
        clb = CLBParams()
        assert clb.block.area_um2 == pytest.approx(5998.272)
        assert clb.luts_per_clb == 128

    def test_blocks_for_luts(self):
        clb = CLBParams()
        assert clb.blocks_for_luts(0) == 0
        assert clb.blocks_for_luts(1) == 1
        assert clb.blocks_for_luts(128) == 1
        assert clb.blocks_for_luts(129) == 2

    def test_negative_luts_rejected(self):
        with pytest.raises(ValueError):
            CLBParams().blocks_for_luts(-1)


class TestRoutingParams:
    def test_hop_delay_grows_with_segments(self):
        routing = RoutingParams()
        assert routing.hop_delay_ns(0) == 0.0
        assert routing.hop_delay_ns(2) > routing.hop_delay_ns(1)

    def test_hop_delay_formula(self):
        routing = RoutingParams(segment_delay_ns=0.1, switch_delay_ns=0.05)
        # n segments and n+1 switches
        assert routing.hop_delay_ns(3) == pytest.approx(3 * 0.1 + 4 * 0.05)

    def test_negative_segments_rejected(self):
        with pytest.raises(ValueError):
            RoutingParams().hop_delay_ns(-1)


class TestPrimePEParams:
    def test_published_table2_values(self):
        prime = PrimePEParams()
        assert prime.area_um2 == pytest.approx(34802.204)
        assert prime.vmm_latency_ns == pytest.approx(3064.7)
        assert prime.computational_density_ops_per_mm2 == pytest.approx(1.229e12, rel=0.01)

    def test_fpsa_pe_smaller_and_faster_than_prime(self):
        fpsa = PEParams()
        prime = PrimePEParams()
        assert fpsa.block.area_um2 < prime.area_um2
        assert fpsa.vmm_latency_ns < prime.vmm_latency_ns
        # area reduction ~36.6%, latency reduction ~94.9% (Table 2)
        assert 1 - fpsa.block.area_um2 / prime.area_um2 == pytest.approx(0.3663, abs=0.01)
        assert 1 - fpsa.vmm_latency_ns / prime.vmm_latency_ns == pytest.approx(0.949, abs=0.005)

    def test_density_improvement_about_31x(self):
        ratio = (
            PEParams().computational_density_ops_per_mm2
            / PrimePEParams().computational_density_ops_per_mm2
        )
        assert ratio == pytest.approx(30.92, rel=0.02)


class TestFPSAConfig:
    def test_chip_area_includes_routing_overhead(self):
        config = FPSAConfig()
        bare = config.pe.area_mm2 + config.smb.area_mm2 + config.clb.area_mm2
        assert config.chip_area_mm2(1, 1, 1) == pytest.approx(
            bare * (1 + config.routing.area_overhead_fraction)
        )

    def test_chip_area_rejects_negative_counts(self):
        with pytest.raises(ValueError):
            FPSAConfig().chip_area_mm2(-1, 0, 0)

    def test_pe_count_for_area_round_trip(self):
        config = FPSAConfig()
        n = config.pe_count_for_area(10.0)
        assert n > 0
        assert config.chip_area_mm2(n, 0, math.ceil(n * config.clbs_per_pe)) <= 10.5

    def test_pe_count_for_zero_area(self):
        assert FPSAConfig().pe_count_for_area(0.0) == 0

    def test_spike_train_comm_slower_than_count(self):
        config = FPSAConfig()
        assert config.spike_train_comm_ns(10) > config.spike_count_comm_ns(10)

    def test_spike_train_comm_bounded_by_pe_cycle(self):
        config = FPSAConfig()
        # for very short routes the train is paced by the PE spike cycle
        minimum = config.pe.cycle_ns * config.pe.sampling_window
        assert config.spike_train_comm_ns(1) >= minimum
