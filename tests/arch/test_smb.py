"""Tests of the spiking memory block model."""

import numpy as np
import pytest

from repro.arch.params import SMBParams
from repro.arch.smb import BufferRequirement, SMBFullError, SpikingMemoryBlock
from repro.arch.spiking import SpikeTrain


class TestBufferRequirement:
    def test_bits_and_smb_count(self):
        req = BufferRequirement(values=1000, value_bits=6)
        assert req.bits == 6000
        assert req.smb_count() == 1
        big = BufferRequirement(values=10000, value_bits=6)
        assert big.smb_count() == 4  # 2730 values per 16Kb block at 6 bits


class TestSpikingMemoryBlock:
    def test_capacity_matches_params(self):
        smb = SpikingMemoryBlock(value_bits=6)
        assert smb.capacity_values == SMBParams().values_capacity(6)
        assert smb.free_values == smb.capacity_values

    def test_write_and_read_counts(self):
        smb = SpikingMemoryBlock(value_bits=6)
        counts = np.array([0, 13, 64])
        smb.write_counts("layer1", counts)
        np.testing.assert_array_equal(smb.read_counts("layer1"), counts)
        assert smb.used_values == 3

    def test_overwrite_reuses_space(self):
        smb = SpikingMemoryBlock(value_bits=6)
        smb.write_counts("slot", np.arange(10))
        smb.write_counts("slot", np.arange(5))
        assert smb.used_values == 5

    def test_capacity_enforced(self):
        smb = SpikingMemoryBlock(value_bits=8)
        too_many = np.zeros(smb.capacity_values + 1, dtype=int)
        with pytest.raises(SMBFullError):
            smb.write_counts("big", too_many)

    def test_count_range_enforced(self):
        smb = SpikingMemoryBlock(value_bits=4)  # max count 16
        with pytest.raises(ValueError):
            smb.write_counts("bad", np.array([17]))
        with pytest.raises(ValueError):
            smb.write_counts("bad", np.array([-1]))

    def test_train_roundtrip_preserves_counts(self):
        smb = SpikingMemoryBlock(value_bits=6)
        counts = np.array([3, 40, 64, 0])
        train = SpikeTrain.from_counts(counts, 64)
        smb.write_train("spikes", train)
        regenerated = smb.read_train("spikes", window=64)
        np.testing.assert_array_equal(regenerated.count(), counts)

    def test_read_missing_slot_raises(self):
        with pytest.raises(KeyError):
            SpikingMemoryBlock().read_counts("nope")

    def test_release_frees_space(self):
        smb = SpikingMemoryBlock(value_bits=6)
        smb.write_counts("tmp", np.arange(20))
        smb.release("tmp")
        assert smb.used_values == 0
        smb.release("tmp")  # idempotent

    def test_access_costs_from_table1(self):
        smb = SpikingMemoryBlock()
        assert smb.access_latency_ns() == pytest.approx(0.578)
        assert smb.access_energy_pj() == pytest.approx(1.150)

    def test_read_train_window_too_small(self):
        smb = SpikingMemoryBlock(value_bits=6)
        smb.write_counts("x", np.array([50]))
        with pytest.raises(ValueError):
            smb.read_train("x", window=32)
