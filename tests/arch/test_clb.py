"""Tests of the configurable logic block model."""

import pytest

from repro.arch.clb import ConfigurableLogicBlock, IterationCounter, LookUpTable


class TestLookUpTable:
    def test_from_function_and_evaluate(self):
        lut = LookUpTable.from_function(2, lambda a, b: a and not b)
        assert lut.evaluate(True, False) is True
        assert lut.evaluate(True, True) is False
        assert lut.evaluate(False, False) is False

    def test_table_size_validated(self):
        with pytest.raises(ValueError):
            LookUpTable(2, [True])
        with pytest.raises(ValueError):
            LookUpTable(0)

    def test_evaluate_arity_checked(self):
        lut = LookUpTable.from_function(3, lambda a, b, c: a or b or c)
        with pytest.raises(ValueError):
            lut.evaluate(True, False)

    def test_default_table_is_all_false(self):
        lut = LookUpTable(2)
        assert lut.evaluate(True, True) is False


class TestIterationCounter:
    def test_wraps_at_period(self):
        counter = IterationCounter(period=3)
        assert counter.step() is False
        assert counter.step() is False
        assert counter.step() is True
        assert counter.value == 0

    def test_width_bits(self):
        assert IterationCounter(2).width_bits == 1
        assert IterationCounter(64).width_bits == 6
        assert IterationCounter(65).width_bits == 7

    def test_lut_cost_grows_with_period(self):
        assert IterationCounter(1024).lut_cost() > IterationCounter(4).lut_cost()

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            IterationCounter(0)
        with pytest.raises(ValueError):
            IterationCounter(4, value=4)

    def test_reset(self):
        counter = IterationCounter(5)
        counter.step()
        counter.reset()
        assert counter.value == 0


class TestConfigurableLogicBlock:
    def test_lut_budget_enforced(self):
        clb = ConfigurableLogicBlock()
        for _ in range(clb.params.luts_per_clb):
            clb.add_lut(LookUpTable(2))
        with pytest.raises(RuntimeError):
            clb.add_lut(LookUpTable(2))

    def test_lut_input_width_enforced(self):
        clb = ConfigurableLogicBlock()
        with pytest.raises(ValueError):
            clb.add_lut(LookUpTable(7))

    def test_counter_consumes_luts(self):
        clb = ConfigurableLogicBlock()
        before = clb.luts_free
        clb.add_counter(64)
        assert clb.luts_free < before

    def test_step_advances_all_counters(self):
        clb = ConfigurableLogicBlock()
        clb.add_counter(2)
        clb.add_counter(3)
        first = clb.step()
        assert first == [False, False]
        second = clb.step()
        assert second == [True, False]
