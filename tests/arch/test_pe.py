"""Tests of the processing element (cost + functional behaviour)."""

import numpy as np
import pytest

from repro.arch.params import PEParams
from repro.arch.pe import ProcessingElement
from repro.arch.reram import ReRAMCellModel


@pytest.fixture(scope="module")
def small_pe_params():
    # a small crossbar keeps the functional simulation fast
    return PEParams(rows=32, physical_cols=32, logical_cols=16, io_bits=5)


class TestProcessingElementCost:
    def test_cost_uses_full_pe_area_regardless_of_tile(self):
        params = PEParams()
        pe = ProcessingElement(np.ones((10, 10)) * 0.01, params=params, functional=False)
        cost = pe.cost()
        assert cost.area_mm2 == pytest.approx(params.area_mm2)
        assert cost.latency_ns == pytest.approx(params.vmm_latency_ns)
        assert cost.ops == 2 * 10 * 10

    def test_full_tile_density_matches_table2(self):
        params = PEParams()
        pe = ProcessingElement(
            np.ones((params.rows, params.logical_cols)) * 0.001,
            params=params,
            functional=False,
        )
        assert pe.cost().tops_per_mm2 == pytest.approx(38.0, rel=0.01)
        assert pe.utilization == pytest.approx(1.0)

    def test_partial_tile_utilization(self):
        params = PEParams()
        pe = ProcessingElement(np.ones((128, 128)) * 0.001, params=params, functional=False)
        assert pe.utilization == pytest.approx(0.25)

    def test_tile_larger_than_crossbar_rejected(self):
        params = PEParams()
        with pytest.raises(ValueError):
            ProcessingElement(np.ones((params.rows + 1, 1)), params=params, functional=False)

    def test_non_2d_weights_rejected(self):
        with pytest.raises(ValueError):
            ProcessingElement(np.ones(5), functional=False)


class TestProcessingElementFunction:
    def test_run_values_approximates_relu_matvec(self, small_pe_params):
        rng = np.random.default_rng(0)
        weights = rng.uniform(-0.2, 0.2, size=(8, 4))
        pe = ProcessingElement(
            weights, params=small_pe_params, cell=ReRAMCellModel(sigma=0.0)
        )
        x = rng.uniform(0, 1, size=8)
        out = pe.run_values(x)
        ideal = np.clip(pe.ideal_output(x), 0, 1)
        assert out.shape == (4,)
        np.testing.assert_allclose(out, ideal, atol=0.2)

    def test_run_counts_shape_and_range(self, small_pe_params):
        pe = ProcessingElement(
            np.full((4, 3), 0.05), params=small_pe_params, cell=ReRAMCellModel(sigma=0.0)
        )
        window = small_pe_params.sampling_window
        out = pe.run_counts(np.array([window, 0, window // 2, 1]))
        assert out.shape == (3,)
        assert np.all(out >= 0)
        assert np.all(out <= window)

    def test_run_counts_validates_shape(self, small_pe_params):
        pe = ProcessingElement(np.ones((4, 2)) * 0.1, params=small_pe_params)
        with pytest.raises(ValueError):
            pe.run_counts(np.zeros(3, dtype=int))

    def test_non_functional_pe_refuses_to_run(self):
        pe = ProcessingElement(np.ones((4, 2)) * 0.1, functional=False)
        with pytest.raises(RuntimeError):
            pe.run_counts(np.zeros(4, dtype=int))

    def test_device_variation_changes_output(self, small_pe_params):
        weights = np.full((8, 4), 0.1)
        rng = np.random.default_rng(5)
        noisy = ProcessingElement(
            weights,
            params=small_pe_params,
            cell=ReRAMCellModel(sigma=0.08),
            variation_rng=rng,
        )
        ideal = ProcessingElement(
            weights, params=small_pe_params, cell=ReRAMCellModel(sigma=0.0)
        )
        x = np.full(8, 0.6)
        assert not np.allclose(noisy.run_values(x), ideal.run_values(x))
