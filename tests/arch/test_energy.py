"""Tests of the chip-level energy aggregation."""

import pytest

from repro.arch.energy import BlockMix, EnergyReport, estimate_energy
from repro.arch.params import FPSAConfig


class TestEnergyReport:
    def test_total_and_breakdown(self):
        report = EnergyReport(pe_pj=60.0, smb_pj=20.0, clb_pj=10.0, routing_pj=10.0)
        assert report.total_pj == pytest.approx(100.0)
        assert report.total_uj == pytest.approx(1e-4)
        breakdown = report.breakdown()
        assert breakdown["pe"] == pytest.approx(0.6)
        assert sum(breakdown.values()) == pytest.approx(1.0)

    def test_empty_breakdown(self):
        report = EnergyReport(0.0, 0.0, 0.0, 0.0)
        assert report.breakdown()["pe"] == 0.0


class TestEstimateEnergy:
    def test_pe_energy_dominates_compute_heavy_mix(self):
        config = FPSAConfig()
        mix = BlockMix(
            n_pe=100, n_smb=10, n_clb=10,
            pe_vmm_per_inference=1000.0,
            smb_accesses_per_inference=100.0,
            clb_cycles_per_inference=100.0,
            routed_bits_per_inference=1e5,
        )
        report = estimate_energy(mix, config)
        assert report.pe_pj > report.smb_pj
        assert report.pe_pj > report.clb_pj
        assert report.total_pj > 0

    def test_energy_scales_linearly_with_activity(self):
        mix1 = BlockMix(10, 1, 1, 100.0, 10.0, 10.0, 1e4)
        mix2 = BlockMix(10, 1, 1, 200.0, 20.0, 20.0, 2e4)
        r1 = estimate_energy(mix1)
        r2 = estimate_energy(mix2)
        assert r2.total_pj == pytest.approx(2 * r1.total_pj)

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            BlockMix(-1, 0, 0, 0.0, 0.0, 0.0)
