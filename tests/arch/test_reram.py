"""Tests of the ReRAM cell/crossbar device model and weight compositions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.reram import (
    AddComposition,
    ReRAMCellModel,
    ReRAMCrossbar,
    SpliceComposition,
    make_composition,
)


class TestReRAMCellModel:
    def test_levels_from_bits(self):
        assert ReRAMCellModel(bits=4).levels == 16
        assert ReRAMCellModel(bits=2).levels == 4

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            ReRAMCellModel(bits=0)
        with pytest.raises(ValueError):
            ReRAMCellModel(g_min=1.0, g_max=0.5)
        with pytest.raises(ValueError):
            ReRAMCellModel(sigma=-0.1)

    def test_quantize_clamps_and_rounds(self):
        cell = ReRAMCellModel(bits=2)  # 4 levels -> steps of 1/3
        quantized = cell.quantize_fraction(np.array([-0.5, 0.0, 0.4, 1.2]))
        assert quantized[0] == 0.0
        assert quantized[1] == 0.0
        assert quantized[2] == pytest.approx(1 / 3)
        assert quantized[3] == 1.0

    def test_program_without_rng_is_ideal(self):
        cell = ReRAMCellModel(sigma=0.05)
        target = np.array([0.0, 0.5, 1.0])
        conductance = cell.program(target, rng=None)
        expected = cell.g_min + cell.quantize_fraction(target) * cell.g_range
        np.testing.assert_allclose(conductance, expected)

    def test_program_with_variation_is_noisy_but_unbiased(self):
        cell = ReRAMCellModel(sigma=0.04)
        rng = np.random.default_rng(0)
        target = np.full(20000, 0.5)
        conductance = cell.program(target, rng=rng)
        ideal = cell.g_min + cell.quantize_fraction(0.5) * cell.g_range
        assert conductance.std() == pytest.approx(cell.sigma_conductance, rel=0.05)
        assert conductance.mean() == pytest.approx(ideal, rel=0.01)

    def test_zero_sigma_means_no_noise(self):
        cell = ReRAMCellModel(sigma=0.0)
        rng = np.random.default_rng(0)
        out = cell.program(np.array([0.25, 0.75]), rng=rng)
        np.testing.assert_allclose(out, cell.program(np.array([0.25, 0.75]), rng=None))


class TestCompositions:
    def test_factory_dispatch(self):
        cell = ReRAMCellModel()
        assert isinstance(make_composition("splice", cell, 2), SpliceComposition)
        assert isinstance(make_composition("add", cell, 2), AddComposition)
        with pytest.raises(ValueError):
            make_composition("bogus", cell, 2)

    def test_splice_precision_grows_with_cells(self):
        cell = ReRAMCellModel(bits=4)
        assert SpliceComposition(cell, 1).weight_bits == 4
        assert SpliceComposition(cell, 2).weight_bits == 8
        assert SpliceComposition(cell, 4).weight_bits == 16

    def test_add_precision_stays_at_cell_bits(self):
        cell = ReRAMCellModel(bits=4)
        assert AddComposition(cell, 8).weight_bits == 4

    def test_splice_roundtrip_without_noise(self):
        cell = ReRAMCellModel(bits=4, sigma=0.0)
        comp = SpliceComposition(cell, 2)
        weights = np.linspace(0, 1, 17)
        realized = comp.realize(weights, rng=None)
        np.testing.assert_allclose(realized, weights, atol=1.0 / 255 + 1e-9)

    def test_add_roundtrip_without_noise(self):
        cell = ReRAMCellModel(bits=4, sigma=0.0)
        comp = AddComposition(cell, 8)
        weights = np.linspace(0, 1, 16)
        realized = comp.realize(weights, rng=None)
        np.testing.assert_allclose(realized, weights, atol=1.0 / 15 + 1e-9)

    def test_splice_deviation_nearly_constant_in_cells(self):
        """Section 7.2: splicing barely improves the normalized deviation."""
        cell = ReRAMCellModel(bits=4, sigma=0.04)
        single = SpliceComposition(cell, 1).normalized_deviation()
        spliced = SpliceComposition(cell, 4).normalized_deviation()
        assert spliced == pytest.approx(single, rel=0.1)

    def test_add_deviation_shrinks_with_sqrt_n(self):
        """Section 7.2: the add method divides the deviation by sqrt(n)."""
        cell = ReRAMCellModel(bits=4, sigma=0.04)
        single = AddComposition(cell, 1).normalized_deviation()
        added = AddComposition(cell, 16).normalized_deviation()
        assert added == pytest.approx(single / 4.0, rel=1e-6)

    def test_add_beats_splice_for_same_cell_count(self):
        cell = ReRAMCellModel(bits=4, sigma=0.04)
        for n in (2, 4, 8, 16):
            assert (
                AddComposition(cell, n).normalized_deviation()
                < SpliceComposition(cell, n).normalized_deviation()
            )

    @given(n_cells=st.integers(min_value=1, max_value=16))
    @settings(max_examples=16, deadline=None)
    def test_add_deviation_formula(self, n_cells):
        cell = ReRAMCellModel(bits=4, sigma=0.05)
        comp = AddComposition(cell, n_cells)
        assert comp.normalized_deviation() == pytest.approx(0.05 / np.sqrt(n_cells))

    @given(
        weights=st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=32),
        n_cells=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=30, deadline=None)
    def test_noiseless_realization_bounded_error(self, weights, n_cells):
        """Property: without variation, both methods round-trip weights to
        within their quantisation step."""
        cell = ReRAMCellModel(bits=4, sigma=0.0)
        weights = np.asarray(weights)
        for method in ("splice", "add"):
            comp = make_composition(method, cell, n_cells)
            step = 1.0 / (comp.weight_levels - 1) if comp.weight_levels > 1 else 1.0
            realized = comp.realize(weights, rng=None)
            assert np.all(np.abs(realized - weights) <= step / 2 + 1e-9)

    def test_zero_cells_rejected(self):
        with pytest.raises(ValueError):
            AddComposition(ReRAMCellModel(), 0)


class TestReRAMCrossbar:
    def test_requires_2d_weights(self):
        with pytest.raises(ValueError):
            ReRAMCrossbar(np.zeros(4))

    def test_ideal_matvec_matches_numpy(self):
        rng = np.random.default_rng(3)
        weights = rng.uniform(-1, 1, size=(16, 8))
        crossbar = ReRAMCrossbar(weights, cell=ReRAMCellModel(sigma=0.0), cells_per_weight=8)
        x = rng.uniform(0, 1, size=16)
        expected = x @ weights
        np.testing.assert_allclose(crossbar.matvec(x), expected, atol=0.15)

    def test_effective_weights_track_requested_sign(self):
        weights = np.array([[0.5, -0.5], [-0.25, 0.75]])
        crossbar = ReRAMCrossbar(weights, cell=ReRAMCellModel(sigma=0.0))
        assert np.sign(crossbar.effective_weights[0, 0]) == 1
        assert np.sign(crossbar.effective_weights[0, 1]) == -1

    def test_variation_perturbs_weights(self):
        rng = np.random.default_rng(0)
        weights = np.full((8, 8), 0.5)
        noisy = ReRAMCrossbar(weights, cell=ReRAMCellModel(sigma=0.05), rng=rng)
        ideal = ReRAMCrossbar(weights, cell=ReRAMCellModel(sigma=0.0))
        assert not np.allclose(noisy.effective_weights, ideal.effective_weights)

    def test_input_length_checked(self):
        crossbar = ReRAMCrossbar(np.ones((4, 2)), cell=ReRAMCellModel(sigma=0.0))
        with pytest.raises(ValueError):
            crossbar.matvec(np.ones(5))

    def test_add_composition_reduces_output_error(self):
        """The add method's lower deviation shows up as lower matvec error."""
        rng_weights = np.random.default_rng(1)
        weights = rng_weights.uniform(-1, 1, size=(64, 32))
        x = rng_weights.uniform(0, 1, size=64)
        expected = x @ weights

        def mean_error(method: str, seed: int) -> float:
            errors = []
            for trial in range(5):
                crossbar = ReRAMCrossbar(
                    weights,
                    cell=ReRAMCellModel(sigma=0.04),
                    composition=method,
                    cells_per_weight=8,
                    rng=np.random.default_rng(seed + trial),
                )
                errors.append(np.abs(crossbar.matvec(x) - expected).mean())
            return float(np.mean(errors))

        assert mean_error("add", 10) < mean_error("splice", 10)
