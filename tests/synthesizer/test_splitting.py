"""Tests of the crossbar tiling planner."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.synthesizer.splitting import plan_tiling, reduction_tree_width


class TestPlanTiling:
    def test_fits_in_one_tile(self):
        plan = plan_tiling(100, 200, 256, 256)
        assert plan.n_tiles == 1
        assert not plan.needs_reduction
        assert plan.spatial_utilization == pytest.approx(100 * 200 / (256 * 256))

    def test_column_split_only(self):
        plan = plan_tiling(256, 512, 256, 256)
        assert plan.n_row_tiles == 1
        assert plan.n_col_tiles == 2
        assert not plan.needs_reduction

    def test_row_split_needs_reduction(self):
        plan = plan_tiling(512, 100, 256, 256)
        assert plan.n_row_tiles == 2
        assert plan.needs_reduction
        assert plan.partials_per_output == 2

    def test_vgg16_fc1_tiling(self):
        # 25088 x 4096 weight matrix
        plan = plan_tiling(25088, 4096, 256, 256)
        assert plan.n_row_tiles == 98
        assert plan.n_col_tiles == 16
        assert plan.n_tiles == 98 * 16

    def test_exact_fit_has_full_utilization(self):
        plan = plan_tiling(512, 512, 256, 256)
        assert plan.spatial_utilization == pytest.approx(1.0)

    def test_tile_dimensions_cover_matrix(self):
        plan = plan_tiling(300, 500, 256, 256)
        assert sum(t.weights for t in plan.tiles) == 300 * 500

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            plan_tiling(0, 10)
        with pytest.raises(ValueError):
            plan_tiling(10, 10, 0, 256)

    @given(
        rows=st.integers(min_value=1, max_value=3000),
        cols=st.integers(min_value=1, max_value=3000),
    )
    @settings(max_examples=60, deadline=None)
    def test_tiling_invariants(self, rows, cols):
        """Property: tiles exactly cover the matrix, none exceeds the
        crossbar, and utilization is in (0, 1]."""
        plan = plan_tiling(rows, cols, 256, 256)
        assert sum(t.weights for t in plan.tiles) == rows * cols
        assert all(t.rows <= 256 and t.cols <= 256 for t in plan.tiles)
        assert plan.n_tiles == plan.n_row_tiles * plan.n_col_tiles
        assert 0 < plan.spatial_utilization <= 1.0


class TestReductionTree:
    def test_single_partial_needs_no_reduction(self):
        assert reduction_tree_width(1) == 0

    def test_up_to_max_rows_needs_one_stage(self):
        assert reduction_tree_width(2) == 1
        assert reduction_tree_width(256) == 1

    def test_beyond_max_rows_needs_two_stages(self):
        assert reduction_tree_width(257) == 2
        assert reduction_tree_width(256 * 256) == 2

    def test_invalid(self):
        with pytest.raises(ValueError):
            reduction_tree_width(0)
