"""Tests of the core-op graph data structures."""

import pytest

from repro.synthesizer.coreop import (
    GRAPH_INPUT,
    GRAPH_OUTPUT,
    CoreOpGraph,
    WeightGroup,
)


def make_group(name: str, rows=256, cols=256, reuse=1, **kwargs) -> WeightGroup:
    return WeightGroup(
        name=name, source=name, kind="matmul", rows=rows, cols=cols, reuse=reuse,
        macs_per_instance=rows * cols, **kwargs,
    )


class TestWeightGroup:
    def test_validation(self):
        with pytest.raises(ValueError):
            make_group("bad", rows=0)
        with pytest.raises(ValueError):
            make_group("bad", reuse=0)
        with pytest.raises(ValueError):
            WeightGroup("bad", "s", "matmul", 4, 4, 1, density=0.0)

    def test_min_pes_from_tiling(self):
        assert make_group("small", rows=100, cols=100).min_pes() == 1
        assert make_group("wide", rows=256, cols=1024).min_pes() == 4
        assert make_group("tall", rows=1024, cols=256).min_pes() == 4

    def test_instances(self):
        group = make_group("conv", rows=512, cols=256, reuse=10)
        assert group.instances() == 20

    def test_weights_respect_density(self):
        group = WeightGroup("sparse", "s", "pool_max", 256, 256, 1, density=0.5,
                            macs_per_instance=100)
        assert group.weights == 256 * 256 // 2

    def test_total_macs(self):
        group = make_group("g", rows=10, cols=10, reuse=7)
        assert group.total_macs == 700


class TestCoreOpGraph:
    def build(self) -> CoreOpGraph:
        g = CoreOpGraph("test")
        g.add_group(make_group("a", reuse=4))
        g.add_group(make_group("b", reuse=2))
        g.add_group(make_group("c"))
        g.add_edge(GRAPH_INPUT, "a", 256)
        g.add_edge("a", "b", 256)
        g.add_edge("b", "c", 256)
        g.add_edge("c", GRAPH_OUTPUT, 10)
        return g

    def test_membership_and_lookup(self):
        g = self.build()
        assert len(g) == 3
        assert "a" in g and "z" not in g
        assert g.group("a").reuse == 4
        with pytest.raises(KeyError):
            g.group("z")

    def test_duplicate_group_rejected(self):
        g = self.build()
        with pytest.raises(ValueError):
            g.add_group(make_group("a"))

    def test_edge_to_unknown_group_rejected(self):
        g = self.build()
        with pytest.raises(ValueError):
            g.add_edge("a", "unknown", 10)

    def test_predecessors_successors(self):
        g = self.build()
        assert g.predecessors("b") == ["a"]
        assert g.successors("b") == ["c"]
        assert g.predecessors("a") == []  # boundary edges excluded

    def test_topological_order(self):
        g = self.build()
        order = [grp.name for grp in g.topological_groups()]
        assert order.index("a") < order.index("b") < order.index("c")

    def test_cycle_detection(self):
        g = self.build()
        g.add_edge("c", "a", 10)
        with pytest.raises(ValueError):
            g.topological_groups()

    def test_statistics(self):
        g = self.build()
        assert g.max_reuse_degree == 4
        assert g.total_instances() == 4 + 2 + 1
        assert g.min_pes() == 3
        assert g.total_macs() == 256 * 256 * 7
        assert 0 < g.spatial_utilization() <= 1.0

    def test_summary_mentions_groups(self):
        assert "a" in self.build().summary()


class TestExpansion:
    def test_expand_instance_counts(self):
        g = CoreOpGraph("expand")
        g.add_group(make_group("x", rows=512, cols=128, reuse=3))
        instances = g.expand()
        # 2 row tiles x 3 reuse positions
        assert len(instances) == 6

    def test_expand_edges_follow_group_edges(self):
        g = CoreOpGraph("edges")
        g.add_group(make_group("p", reuse=2))
        g.add_group(make_group("q", reuse=2))
        g.add_edge("p", "q", 64)
        instances = g.expand()
        assert len(instances.edges) == 2
        for edge in instances.edges:
            assert edge.src.startswith("p")
            assert edge.dst.startswith("q")

    def test_expand_respects_max_reuse_cap(self):
        g = CoreOpGraph("cap")
        g.add_group(make_group("big", reuse=1000))
        instances = g.expand(max_reuse=5)
        assert len(instances) == 5

    def test_expand_instance_limit(self):
        g = CoreOpGraph("huge")
        g.add_group(make_group("big", reuse=10_000_000))
        with pytest.raises(ValueError):
            g.expand(max_instances=1000)

    def test_expanded_graph_topological(self):
        g = CoreOpGraph("topo")
        g.add_group(make_group("p", reuse=4))
        g.add_group(make_group("q", reuse=2))
        g.add_edge("p", "q", 64)
        instances = g.expand()
        order = [i.name for i in instances.topological()]
        for edge in instances.edges:
            assert order.index(edge.src) < order.index(edge.dst)
