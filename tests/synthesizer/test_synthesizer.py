"""Tests of the neural synthesizer driver."""

import pytest

from repro.graph.builder import GraphBuilder
from repro.models import build_model
from repro.synthesizer.coreop import GRAPH_OUTPUT
from repro.synthesizer.synthesizer import SynthesisOptions, synthesize


class TestSynthesisOptions:
    def test_from_pe(self, config):
        options = SynthesisOptions.from_pe(config.pe)
        assert options.crossbar_rows == config.pe.rows
        assert options.crossbar_cols == config.pe.logical_cols

    def test_pooling_can_be_disabled(self):
        graph = build_model("LeNet")
        with_pool = synthesize(graph, SynthesisOptions(lower_pooling=True))
        without_pool = synthesize(graph, SynthesisOptions(lower_pooling=False))
        assert len(without_pool) < len(with_pool)
        assert all(g.kind not in ("pool_max", "pool_avg") for g in without_pool.groups())

    def test_lrn_can_be_disabled(self):
        graph = build_model("AlexNet")
        with_lrn = synthesize(graph, SynthesisOptions(lower_lrn=True))
        without_lrn = synthesize(graph, SynthesisOptions(lower_lrn=False))
        assert len(without_lrn) < len(with_lrn)


class TestSynthesizer:
    def test_passthrough_ops_produce_no_groups(self):
        builder = GraphBuilder("passthrough", input_shape=(16,))
        builder.dense(8, relu=True, name="fc").dropout(0.1).softmax()
        coreops = synthesize(builder.build())
        assert len(coreops) == 1  # only the dense matmul

    def test_output_edge_marked(self, mlp_coreops):
        outputs = [e for e in mlp_coreops.edges() if e.dst == GRAPH_OUTPUT]
        assert len(outputs) >= 1

    def test_mlp_group_count(self, mlp_coreops):
        # 3 dense layers + 2 reductions (fc1 rows 784 > 256, fc2 rows 500 > 256)
        kinds = sorted(g.kind for g in mlp_coreops.groups())
        assert kinds.count("matmul") == 3
        assert kinds.count("reduce") == 2

    def test_lenet_min_pes_reasonable(self, lenet_coreops):
        # LeNet's 430K weights need at least ceil(430K / 65536) = 7 PEs for
        # storage; tiling fragmentation and pooling add more.
        assert 7 <= lenet_coreops.min_pes() <= 40

    def test_vgg16_min_pes_close_to_weight_bound(self, vgg16_coreops, vgg16_graph):
        weight_bound = vgg16_graph.total_params() / (256 * 256)
        assert vgg16_coreops.min_pes() >= weight_bound
        assert vgg16_coreops.min_pes() < 1.2 * weight_bound

    def test_vgg16_max_reuse_is_first_conv(self, vgg16_coreops):
        assert vgg16_coreops.max_reuse_degree == 224 * 224

    def test_total_macs_close_to_graph_macs(self, vgg16_graph, vgg16_coreops):
        """The core-op graph's useful MACs should cover the model's MACs
        (pooling/LRN synthesis adds a small extra)."""
        graph_macs = vgg16_graph.total_ops() / 2
        coreop_macs = vgg16_coreops.total_macs()
        assert coreop_macs == pytest.approx(graph_macs, rel=0.15)

    def test_googlenet_pooling_dominates_groups(self):
        coreops = synthesize(build_model("GoogLeNet"))
        pool_groups = [g for g in coreops.groups() if g.kind in ("pool_max", "pool_avg")]
        assert len(pool_groups) >= 20  # 9 inception pools + stem pools, 2 stages each

    def test_unknown_operation_rejected(self):
        from repro.graph.graph import ComputationalGraph
        from repro.graph.ops import InputOp, Operation
        from repro.synthesizer.lowering import LoweringError

        class Exotic(Operation):
            def infer_shape(self, inputs):
                return inputs[0]

        graph = ComputationalGraph("exotic")
        graph.add("input", InputOp((4,)))
        graph.add("weird", Exotic(), ["input"])
        with pytest.raises(LoweringError):
            synthesize(graph)

    def test_synthesizer_is_deterministic(self, lenet_graph):
        first = synthesize(lenet_graph)
        second = synthesize(lenet_graph)
        assert [g.name for g in first.groups()] == [g.name for g in second.groups()]
        assert first.min_pes() == second.min_pes()
