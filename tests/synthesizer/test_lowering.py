"""Tests of the per-operation lowering rules."""

import math

import pytest

from repro.graph.builder import GraphBuilder
from repro.synthesizer.coreop import CoreOpGraph
from repro.synthesizer.lowering import LoweringContext, LoweringError
from repro.synthesizer.synthesizer import synthesize


def lowering_graph(build):
    """Helper: build a tiny model with ``build(builder)`` and synthesize it."""
    builder = GraphBuilder("tiny", input_shape=(4, 16, 16))
    build(builder)
    return synthesize(builder.build())


class TestConvLowering:
    def test_conv_group_shape_and_reuse(self):
        coreops = lowering_graph(lambda b: b.conv(8, 3, padding=1, name="c"))
        group = coreops.group("c")
        assert group.rows == 4 * 9
        assert group.cols == 8
        assert group.reuse == 16 * 16
        assert group.kind == "matmul"

    def test_grouped_conv_creates_one_group_per_split(self):
        coreops = lowering_graph(lambda b: b.conv(8, 3, padding=1, groups=2, name="c"))
        assert "c/g0" in coreops
        assert "c/g1" in coreops

    def test_large_conv_adds_reduction(self):
        builder = GraphBuilder("big", input_shape=(128, 8, 8))
        builder.conv(16, 3, padding=1, name="c")
        coreops = synthesize(builder.build())
        # 128 * 9 = 1152 rows > 256 -> row split -> reduction group
        assert "c/reduce0" in coreops
        reduce = coreops.group("c/reduce0")
        assert reduce.kind == "reduce"
        assert coreops.predecessors("c/reduce0") == ["c"]


class TestDenseLowering:
    def test_dense_reuse_is_one(self):
        builder = GraphBuilder("fc", input_shape=(100,))
        builder.dense(50, name="fc")
        coreops = synthesize(builder.build())
        assert coreops.group("fc").reuse == 1

    def test_mlp_total_weights_preserved(self, mlp_graph, mlp_coreops):
        matmul_weights = sum(
            g.weights for g in mlp_coreops.groups() if g.kind == "matmul"
        )
        assert matmul_weights == mlp_graph.total_params()


class TestPoolingLowering:
    def test_maxpool_two_stages(self):
        coreops = lowering_graph(lambda b: b.maxpool(2, name="p"))
        assert "p/max_diff" in coreops
        assert "p/max_sum" in coreops
        assert coreops.predecessors("p/max_sum") == ["p/max_diff"]

    def test_maxpool_reuse_scales_with_outputs(self):
        coreops = lowering_graph(lambda b: b.maxpool(2, name="p"))
        outputs = 4 * 8 * 8
        pairwise = outputs * (2 * 2 - 1)
        expected_reuse = math.ceil(pairwise / 128)
        assert coreops.group("p/max_diff").reuse == expected_reuse

    def test_maxpool_groups_have_low_density(self):
        coreops = lowering_graph(lambda b: b.maxpool(3, stride=2, name="p"))
        assert coreops.group("p/max_diff").density < 0.05

    def test_avgpool_single_group(self):
        coreops = lowering_graph(lambda b: b.avgpool(2, name="p"))
        group = coreops.group("p/avg")
        assert group.kind == "pool_avg"
        assert group.rows == 4 * 64  # window of 4 packed 64 times

    def test_global_avgpool(self):
        coreops = lowering_graph(lambda b: b.global_avgpool(name="gap"))
        group = coreops.group("gap/avg")
        assert group.kind == "pool_avg"
        # 16x16 window, one unit per crossbar (256 rows)
        assert group.rows == 256


class TestAddAndLRNLowering:
    def test_add_lowering(self):
        def build(b):
            trunk = b.checkpoint()
            b.conv(4, 1, relu=False, name="l", from_=trunk)
            left = b.current
            b.conv(4, 1, relu=False, name="r", from_=trunk)
            right = b.current
            b.add(left, right, name="sum")

        coreops = lowering_graph(build)
        group = coreops.group("sum/add")
        assert group.kind == "add"
        assert set(coreops.predecessors("sum/add")) == {"l", "r"}

    def test_lrn_lowering_two_mlp_stages(self):
        coreops = lowering_graph(lambda b: b.lrn(name="n"))
        assert "n/mlp0" in coreops
        assert "n/mlp1" in coreops
        assert coreops.group("n/mlp0").reuse == 16 * 16


class TestLoweringContext:
    def test_pack_units_bounds(self):
        ctx = LoweringContext(graph=CoreOpGraph("x"))
        assert ctx._pack_units(2, 2) == 128
        assert ctx._pack_units(256, 1) == 1
        with pytest.raises(LoweringError):
            ctx._pack_units(300, 1)
