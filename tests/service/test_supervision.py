"""Fault tolerance of the serving runtime: worker supervision, bounded
deterministic retries, per-job deadlines and admission control."""

from __future__ import annotations

import pytest

from repro.bench import _summary_key
from repro.errors import (
    DeadlineExceededError,
    OverloadedError,
    error_from_payload,
)
from repro.faults import (
    FAULT_PLAN_ENV,
    SITE_WORKER_COMPILE,
    FaultPlan,
    FaultSpec,
    clear_installed_plan,
)
from repro.service import CompileRequest, JobManager, PoolSupervisor


@pytest.fixture(autouse=True)
def _clean_fault_state(monkeypatch):
    monkeypatch.delenv(FAULT_PLAN_ENV, raising=False)
    clear_installed_plan()
    yield
    clear_installed_plan()


def crash_plan(**match) -> str:
    return FaultPlan(
        faults=(
            FaultSpec(site=SITE_WORKER_COMPILE, kind="crash", match=match),
        )
    ).to_json()


class TestPoolSupervisor:
    def test_breakage_reports_coalesce_on_generation(self):
        rebuilds = []
        supervisor = PoolSupervisor(lambda: rebuilds.append(1))
        assert supervisor.generation == 0
        assert supervisor.note_breakage(0) == 1
        assert len(rebuilds) == 1
        # a second report of the same (already healed) generation is a
        # stale observation: no second rebuild
        assert supervisor.note_breakage(0) == 1
        assert len(rebuilds) == 1
        assert supervisor.note_breakage(1) == 2
        assert len(rebuilds) == 2
        health = supervisor.health
        assert health.broken_pool_events == 2
        assert health.respawns == 2
        assert health.total_recovery_seconds >= 0.0
        supervisor.note_displaced()
        supervisor.note_displaced(2)
        assert health.jobs_displaced == 3
        assert set(health.to_dict()) == {
            "broken_pool_events",
            "respawns",
            "jobs_displaced",
            "last_recovery_seconds",
            "total_recovery_seconds",
        }


class TestCrashRecovery:
    def test_crashed_worker_is_respawned_and_the_job_retried(self):
        request = CompileRequest(
            model="MLP-500-100",
            seed=0,
            max_retries=2,
            fault_plan=crash_plan(model="MLP-500-100", attempt=0),
        )
        with JobManager(max_workers=2) as reference_manager:
            reference = reference_manager.result(
                reference_manager.submit(CompileRequest(model="MLP-500-100", seed=0))
            )
        with JobManager(max_workers=2) as manager:
            response = manager.result(manager.submit(request))
            assert response.ok
            assert manager.stats.retried >= 1
            health = manager.supervisor.health
            assert health.broken_pool_events >= 1
            assert health.respawns >= 1
            assert health.jobs_displaced >= 1
        # the retried response is bit-identical (seconds stripped) to a
        # fault-free compile of the same seed
        assert _summary_key(response) == _summary_key(reference)

    def test_coalesced_followers_survive_a_primary_crash(self):
        request = CompileRequest(
            model="MLP-500-100",
            seed=0,
            max_retries=2,
            fault_plan=crash_plan(model="MLP-500-100", attempt=0),
        )
        with JobManager(max_workers=2, coalesce=True) as manager:
            job_ids = manager.submit_batch([request] * 3)
            responses = [manager.result(job_id) for job_id in job_ids]
        assert all(response.ok for response in responses)
        # the three submissions shared one (crashed, then retried) compile
        assert manager.stats.coalesced == 2
        assert manager.stats.retried >= 1

    def test_exhausted_retries_fan_out_a_typed_worker_crash_error(self):
        # the crash matches every attempt, so the retry budget runs dry
        request = CompileRequest(
            model="MLP-500-100",
            max_retries=1,
            fault_plan=crash_plan(model="MLP-500-100"),
        )
        with JobManager(max_workers=1, coalesce=True) as manager:
            job_ids = manager.submit_batch([request] * 2)
            responses = [manager.result(job_id, timeout=120) for job_id in job_ids]
        for response in responses:
            assert not response.ok
            assert response.error.code == "worker_crash"
            assert response.error.retriable
        assert manager.stats.retried == 1

    def test_partitioned_compile_recovers_from_crash_and_hang(self):
        plan = FaultPlan(
            faults=(
                FaultSpec(
                    site=SITE_WORKER_COMPILE,
                    kind="crash",
                    match={"num_chips": 2, "attempt": 0},
                ),
                FaultSpec(
                    site=SITE_WORKER_COMPILE,
                    kind="hang",
                    seconds=0.05,
                    match={"num_chips": 2, "attempt": 1},
                ),
            )
        ).to_json()
        reference_request = CompileRequest(
            model="MLP-500-100", seed=0, num_chips=2
        )
        with JobManager(max_workers=2) as manager:
            reference = manager.result(manager.submit(reference_request))
        assert reference.ok
        with JobManager(max_workers=2) as manager:
            response = manager.result(
                manager.submit(
                    CompileRequest(
                        model="MLP-500-100",
                        seed=0,
                        num_chips=2,
                        max_retries=3,
                        fault_plan=plan,
                    )
                )
            )
            assert manager.stats.retried >= 1
        assert response.ok
        assert _summary_key(response) == _summary_key(reference)


class TestRetryPolicy:
    def test_transient_io_fault_is_retried(self):
        plan = FaultPlan(
            faults=(
                FaultSpec(
                    site=SITE_WORKER_COMPILE,
                    kind="io_error",
                    match={"attempt": 0},
                ),
            )
        ).to_json()
        with JobManager(max_workers=1, use_processes=False) as manager:
            response = manager.result(
                manager.submit(
                    CompileRequest(
                        model="MLP-500-100", max_retries=2, fault_plan=plan
                    )
                )
            )
        assert response.ok
        assert manager.stats.retried == 1

    def test_typed_compile_errors_are_never_retried(self):
        with JobManager(max_workers=1, use_processes=False) as manager:
            response = manager.result(
                manager.submit(
                    CompileRequest(model="MLP-500-100", pe_budget=1, max_retries=3)
                )
            )
        assert not response.ok
        assert response.error.code == "capacity_error"
        assert not response.error.retriable
        assert manager.stats.retried == 0

    def test_backoff_is_deterministic_and_bounded(self):
        from repro.service.jobs import _Job

        request = CompileRequest(model="MLP-500-100", seed=5)
        with JobManager(max_workers=1, use_processes=False) as manager:
            job = _Job("job-0001", request)
            first = manager._backoff_delay(job, 1)
            second = manager._backoff_delay(job, 2)
            # same (seed, fingerprint, attempt) -> same delay, replayable
            assert manager._backoff_delay(_Job("job-0002", request), 1) == first
            assert 0.0 <= first <= manager.retry_backoff_s
            assert 0.0 <= second <= 2 * manager.retry_backoff_s
            assert second <= manager.retry_backoff_cap_s
            # a different seed draws a different jitter
            other = _Job(
                "job-0003", CompileRequest(model="MLP-500-100", seed=6)
            )
            assert manager._backoff_delay(other, 1) != first

    def test_invalid_retry_and_queue_settings_rejected(self):
        from repro.errors import InvalidRequestError

        with pytest.raises(InvalidRequestError):
            JobManager(max_retries=-1, use_processes=False)
        with pytest.raises(InvalidRequestError):
            JobManager(max_queue_depth=0, use_processes=False)


class TestDeadlines:
    def test_result_timeout_is_a_typed_deadline_error(self):
        with JobManager(max_workers=1, use_processes=False, cache=False) as jm:
            first = jm.submit("GoogLeNet")
            second = jm.submit("MLP-500-100")
            with pytest.raises(DeadlineExceededError) as excinfo:
                jm.result(second, timeout=0)
            assert isinstance(excinfo.value, TimeoutError)
            assert excinfo.value.details["job_id"] == second
            assert jm.result(first).ok
            assert jm.result(second).ok

    def test_expired_deadline_publishes_a_typed_error(self):
        with JobManager(max_workers=1, use_processes=False, cache=False) as jm:
            # the heavy compile saturates the single worker; the second
            # job's tiny deadline expires while it is still queued
            blocker = jm.submit("GoogLeNet")
            expired = jm.submit(
                CompileRequest(model="MLP-500-100", deadline_s=0.01)
            )
            response = jm.result(expired, timeout=60)
            assert not response.ok
            assert response.error.code == "deadline_exceeded"
            rebuilt = error_from_payload(response.error.to_dict())
            assert isinstance(rebuilt, DeadlineExceededError)
            assert isinstance(rebuilt, TimeoutError)
            assert jm.result(blocker).ok
            assert jm.stats.deadline_expired == 1


class TestAdmissionControl:
    def test_overload_rejects_with_a_retriable_typed_error(self):
        with JobManager(
            max_workers=1, use_processes=False, cache=False, max_queue_depth=1
        ) as jm:
            blocker = jm.submit("GoogLeNet")
            with pytest.raises(OverloadedError) as excinfo:
                jm.submit("AlexNet")
            assert excinfo.value.details["max_queue_depth"] == 1
            # the typed payload round-trips for wire-level clients
            from repro.service import ErrorPayload

            payload = ErrorPayload.from_exception(excinfo.value)
            assert payload.code == "overloaded"
            assert payload.retriable
            assert isinstance(
                error_from_payload(payload.to_dict()), OverloadedError
            )
            assert jm.stats.rejected == 1
            # an identical in-flight request coalesces instead: followers
            # occupy no worker, so the cap does not apply to them
            follower = jm.submit("GoogLeNet")
            assert jm.stats.coalesced == 1
            assert jm.result(blocker).ok
            assert jm.result(follower).ok
            # capacity freed: new submissions are admitted again
            assert jm.result(jm.submit("MLP-500-100")).ok

    def test_rejected_submission_leaves_no_orphan_job(self):
        with JobManager(
            max_workers=1, use_processes=False, cache=False, max_queue_depth=1
        ) as jm:
            blocker = jm.submit("GoogLeNet")
            with pytest.raises(OverloadedError):
                jm.submit("AlexNet")
            assert len(jm.jobs()) == 1
            assert jm.result(blocker).ok


class TestRuntimeSurface:
    def test_stats_and_health_exposed(self):
        from repro.service import ServingRuntime

        with ServingRuntime(
            max_workers=1, use_processes=False, shared_cache_dir=False
        ) as runtime:
            assert runtime.serve("MLP-500-100").ok
            stats = runtime.stats()
        for key in (
            "retried",
            "displaced",
            "rejected",
            "deadline_expired",
            "pool_health",
        ):
            assert key in stats
        # a thread pool cannot break like a process pool: no supervisor
        assert stats["pool_health"] is None

    def test_process_runtime_reports_pool_health(self):
        from repro.service import ServingRuntime

        with ServingRuntime(max_workers=1, shared_cache_dir=False) as runtime:
            assert runtime.serve("MLP-500-100").ok
            health = runtime.health()
        assert health is not None
        assert health["broken_pool_events"] == 0
        assert health["respawns"] == 0
