"""Tests of the serving runtime: coalescing, warm-pool serving, stats."""

from concurrent.futures import Future

import pytest

from repro.service import (
    CompileRequest,
    CompileResponse,
    CompileTimings,
    JobManager,
    JobState,
    ServingRuntime,
)
from repro.service.client import serve_request


class _ManualExecutor:
    """An executor whose futures the test completes by hand — makes the
    in-flight window deterministic instead of racing a real compile."""

    def __init__(self):
        self.submitted = []

    def submit(self, fn, *args, **kwargs):
        future = Future()
        future.set_running_or_notify_cancel()
        self.submitted.append((fn, args, future))
        return future

    def complete_all(self):
        for fn, args, future in self.submitted:
            if not future.done():
                future.set_result(fn(*args))

    def shutdown(self, wait=True):
        pass


class TestRequestCoalescing:
    def test_identical_inflight_requests_share_one_compile(self):
        executor = _ManualExecutor()
        manager = JobManager(pool=executor)
        request = CompileRequest(model="MLP-500-100", tags={"who": "a"})
        twin = CompileRequest(model="MLP-500-100", tags={"who": "b"})
        other = CompileRequest(model="LeNet")
        first = manager.submit(request)
        second = manager.submit(twin)  # same fingerprint: tags excluded
        third = manager.submit(other)
        # exactly two compiles reached the pool: the twin coalesced
        assert len(executor.submitted) == 2
        assert manager.stats.submitted == 3
        assert manager.stats.coalesced == 1
        assert manager.status(second).coalesced
        assert manager.status(second).state == JobState.RUNNING
        executor.complete_all()
        r1 = manager.result(first, timeout=10)
        r2 = manager.result(second, timeout=10)
        r3 = manager.result(third, timeout=10)
        assert r1.ok and r2.ok and r3.ok
        # identical responses, but each under its own request (tags kept)
        assert r1.summary.to_dict() == r2.summary.to_dict()
        assert r1.request.tags == {"who": "a"}
        assert r2.request.tags == {"who": "b"}
        assert r3.summary.to_dict() != r1.summary.to_dict()
        assert manager.status(second).seconds is not None

    def test_finished_requests_do_not_coalesce(self):
        executor = _ManualExecutor()
        manager = JobManager(pool=executor)
        first = manager.submit("MLP-500-100")
        executor.complete_all()
        manager.result(first, timeout=10)
        manager.submit("MLP-500-100")  # primary finished: fresh compile
        assert len(executor.submitted) == 2
        assert manager.stats.coalesced == 0

    def test_coalesce_disabled(self):
        executor = _ManualExecutor()
        manager = JobManager(pool=executor, coalesce=False)
        manager.submit("MLP-500-100")
        manager.submit("MLP-500-100")
        assert len(executor.submitted) == 2
        assert manager.stats.coalesced == 0

    def test_follower_failure_fanout(self):
        executor = _ManualExecutor()
        manager = JobManager(pool=executor)
        first = manager.submit("no-such-model")
        second = manager.submit("no-such-model")
        assert len(executor.submitted) == 1
        executor.complete_all()
        r1 = manager.result(first, timeout=10)
        r2 = manager.result(second, timeout=10)
        assert not r1.ok and not r2.ok
        assert r1.error.code == r2.error.code == "unknown_model"
        assert manager.stats.failed == 2

    def test_follower_released_when_primary_submit_fails(self):
        # a follower that attached while the primary's pool.submit was in
        # flight must not hang forever when that submit raises
        class _FlakyExecutor(_ManualExecutor):
            def __init__(self):
                super().__init__()
                self.fail_next = False

            def submit(self, fn, *args, **kwargs):
                if self.fail_next:
                    raise RuntimeError("pool is gone")
                return super().submit(fn, *args, **kwargs)

        executor = _FlakyExecutor()
        manager = JobManager(pool=executor)

        # deterministically recreate the window: attach the follower while
        # the primary is registered in-flight but before its submit runs
        original_submit = executor.submit
        follower_ids = []

        def submit_with_interleaved_follower(fn, *args, **kwargs):
            executor.submit = original_submit  # only intercept once
            follower_ids.append(manager.submit("MLP-500-100"))
            raise RuntimeError("pool is gone")

        executor.submit = submit_with_interleaved_follower
        with pytest.raises(RuntimeError, match="pool is gone"):
            manager.submit("MLP-500-100")
        (follower_id,) = follower_ids
        response = manager.result(follower_id, timeout=5)  # must not hang
        assert not response.ok
        assert response.error.code == "internal"

    def test_cancel_retires_inflight_entry(self):
        executor = _ManualExecutor()
        manager = JobManager(pool=executor)
        primary = manager.submit("MLP-500-100")
        # ManualExecutor futures report RUNNING, so cancel() fails — but it
        # must restore the in-flight slot so later duplicates still coalesce
        assert manager.cancel(primary) is False
        manager.submit("MLP-500-100")
        assert manager.stats.coalesced == 1
        executor.complete_all()
        assert manager.result(primary, timeout=10).ok

    def test_followers_cannot_be_cancelled(self):
        executor = _ManualExecutor()
        manager = JobManager(pool=executor)
        manager.submit("MLP-500-100")
        follower = manager.submit("MLP-500-100")
        assert manager.cancel(follower) is False
        executor.complete_all()
        assert manager.result(follower, timeout=10).ok

    def test_coalescing_with_thread_pool_end_to_end(self):
        # a real (thread) pool: whether or not the duplicates coalesce is
        # timing-dependent, but the responses must always be correct
        with JobManager(max_workers=2, use_processes=False) as manager:
            ids = [manager.submit("MLP-500-100") for _ in range(4)]
            responses = [manager.result(job_id, timeout=60) for job_id in ids]
        assert all(r.ok for r in responses)
        summaries = {str(sorted(r.summary.to_dict().items())) for r in responses}
        assert len(summaries) == 1


class TestServingRuntime:
    def test_serve_batch_threads(self, tmp_path):
        with ServingRuntime(
            max_workers=2, use_processes=False, shared_cache_dir=str(tmp_path)
        ) as runtime:
            requests = [CompileRequest(model="MLP-500-100")] * 3 + ["LeNet"]
            responses = runtime.serve_batch(requests)
            assert all(r.ok for r in responses)
            stats = runtime.stats()
            assert stats["submitted"] == 4
            assert stats["completed"] == 4
            assert stats["shared_cache_dir"] == str(tmp_path)
            assert len(runtime.latencies()) == 4

    def test_serve_batch_processes_warm_pool(self):
        with ServingRuntime(max_workers=2) as runtime:
            first = runtime.serve_batch(["MLP-500-100", "LeNet"])
            pids = runtime.stats()["worker_pids"]
            second = runtime.serve_batch(["MLP-500-100", "LeNet"])
            assert runtime.stats()["worker_pids"] == pids
        assert all(r.ok for r in first + second)
        for a, b in zip(first, second, strict=True):
            assert a.summary.to_dict() == b.summary.to_dict()

    def test_owned_cache_dir_removed_on_close(self):
        import os

        runtime = ServingRuntime(max_workers=1, use_processes=False)
        cache_dir = runtime.shared_cache_dir
        assert cache_dir is not None and os.path.isdir(cache_dir)
        runtime.close()
        assert not os.path.exists(cache_dir)

    def test_serve_single(self):
        with ServingRuntime(max_workers=1, use_processes=False) as runtime:
            response = runtime.serve("MLP-500-100")
        assert response.ok


class TestSharedCacheCounters:
    def test_timings_carry_shared_counters(self, tmp_path):
        from repro.core.cache import StageCache
        from repro.core.shared_cache import SharedStageCache

        request = CompileRequest(model="MLP-500-100")
        serve_request(
            request, cache=StageCache(shared=SharedStageCache(str(tmp_path)))
        )
        served = serve_request(
            request, cache=StageCache(shared=SharedStageCache(str(tmp_path)))
        )
        timings = served.response.timings
        assert timings.shared_cache_hits > 0
        assert timings.shared_cache_hit_rate == pytest.approx(1.0)
        # wire round-trip keeps the new counters
        clone = CompileResponse.from_json(served.response.to_json())
        assert clone.timings.shared_cache_hits == timings.shared_cache_hits
        assert clone.timings.evictions == timings.evictions

    def test_old_wire_payload_still_parses(self):
        # payloads from before the shared-cache counters must deserialize
        data = {
            "passes": [],
            "total_seconds": 0.5,
            "cache_hits": 1,
            "cache_misses": 2,
        }
        timings = CompileTimings.from_dict(data)
        assert timings.shared_cache_hits == 0
        assert timings.evictions == 0
