"""Tests of the typed FPSAError hierarchy and its payload mapping."""

import pytest

from repro.errors import (
    ERROR_CODES,
    RETRIABLE_CODES,
    CapacityError,
    DeadlineExceededError,
    FPSAError,
    InvalidRequestError,
    MappingError,
    OverloadedError,
    PnRError,
    SynthesisError,
    TransientIOError,
    UnknownModelError,
    VerificationError,
    WorkerCrashError,
    error_from_payload,
)

ALL_ERRORS = [
    FPSAError,
    InvalidRequestError,
    UnknownModelError,
    SynthesisError,
    MappingError,
    PnRError,
    CapacityError,
    VerificationError,
    WorkerCrashError,
    TransientIOError,
    OverloadedError,
    DeadlineExceededError,
]


class TestHierarchy:
    @pytest.mark.parametrize("cls", ALL_ERRORS)
    def test_every_error_is_an_fpsa_error(self, cls):
        assert issubclass(cls, FPSAError)
        assert isinstance(cls.code, str) and cls.code

    def test_codes_are_unique(self):
        codes = [cls.code for cls in ALL_ERRORS]
        assert len(codes) == len(set(codes))
        assert set(ERROR_CODES) == set(codes)

    def test_legacy_builtin_compatibility(self):
        # pre-hierarchy call sites caught builtins; the typed errors must
        # still satisfy those isinstance checks
        assert issubclass(InvalidRequestError, ValueError)
        assert issubclass(InvalidRequestError, TypeError)
        assert issubclass(UnknownModelError, KeyError)
        assert issubclass(SynthesisError, ValueError)
        assert issubclass(MappingError, ValueError)
        assert issubclass(PnRError, RuntimeError)
        assert issubclass(CapacityError, ValueError)
        # the serving-fault errors keep the same convention: callers
        # catching the stdlib types still see them
        assert issubclass(TransientIOError, OSError)
        assert issubclass(DeadlineExceededError, TimeoutError)

    def test_retriable_codes_match_class_attributes(self):
        assert RETRIABLE_CODES == {
            cls.code for cls in ALL_ERRORS if cls.retriable
        }
        # worker death, transient IO and overload may be retried; a
        # deadline expiry and every typed compile error are terminal
        assert WorkerCrashError.retriable
        assert TransientIOError.retriable
        assert OverloadedError.retriable
        assert not DeadlineExceededError.retriable
        assert not SynthesisError.retriable
        assert not InvalidRequestError.retriable

    def test_verification_error_carries_stage_invariant_ids(self):
        error = VerificationError(
            "pnr: rr-capacity: wire used twice",
            stage="pnr",
            invariant="rr-capacity",
            ids=("net_a", "net_b"),
        )
        assert error.stage == "pnr"
        assert error.invariant == "rr-capacity"
        assert error.ids == ("net_a", "net_b")
        assert error.details["stage"] == "pnr"
        assert error.details["invariant"] == "rr-capacity"
        assert error.details["ids"] == ["net_a", "net_b"]
        # the payload round-trip keeps stage/invariant/ids machine-readable
        rebuilt = error_from_payload(error.payload())
        assert type(rebuilt) is VerificationError
        assert rebuilt.stage == "pnr"
        assert rebuilt.ids == ("net_a", "net_b")

    def test_str_is_the_plain_message(self):
        # KeyError would repr() the message; the hierarchy must not
        error = UnknownModelError("no model named 'X'")
        assert str(error) == "no model named 'X'"

    def test_details_default_to_empty_dict(self):
        assert FPSAError("boom").details == {}
        assert FPSAError("boom", details={"a": 1}).details == {"a": 1}


class TestPayloadMapping:
    def test_payload_shape(self):
        error = CapacityError("too big", details={"pe_budget": 4})
        payload = error.payload()
        assert payload == {
            "code": "capacity_error",
            "type": "CapacityError",
            "message": "too big",
            "details": {"pe_budget": 4},
        }

    @pytest.mark.parametrize("cls", ALL_ERRORS)
    def test_round_trip_through_payload(self, cls):
        error = cls("some message", details={"key": "value"})
        rebuilt = error_from_payload(error.payload())
        assert type(rebuilt) is cls
        assert rebuilt.message == "some message"
        assert rebuilt.details == {"key": "value"}

    def test_unknown_code_degrades_to_base_class(self):
        rebuilt = error_from_payload({"code": "from_the_future", "message": "hi"})
        assert type(rebuilt) is FPSAError
        assert rebuilt.message == "hi"


class TestRaiseSites:
    def test_unknown_model(self):
        from repro.models.zoo import build_model

        with pytest.raises(UnknownModelError) as excinfo:
            build_model("NotAModel")
        assert "NotAModel" in str(excinfo.value)
        # legacy callers catching KeyError still work
        with pytest.raises(KeyError):
            build_model("NotAModel")

    def test_lowering_error_is_synthesis_error(self):
        from repro.synthesizer.lowering import LoweringError

        assert issubclass(LoweringError, SynthesisError)

    def test_routing_error_is_pnr_error(self):
        from repro.pnr.routing import RoutingError

        assert issubclass(RoutingError, PnRError)

    def test_allocation_rejects_bad_duplication(self, mlp_coreops):
        from repro.mapper.allocation import allocate

        with pytest.raises(InvalidRequestError):
            allocate(mlp_coreops, duplication_degree=0)

    def test_pe_budget_too_small_is_capacity_error(self, mlp_coreops, config):
        from repro.mapper.mapper import SpatialTemporalMapper

        with pytest.raises(CapacityError) as excinfo:
            SpatialTemporalMapper(config).map(mlp_coreops, pe_budget=1)
        assert excinfo.value.details["pe_budget"] == 1
        assert excinfo.value.details["minimum_pes"] > 1
