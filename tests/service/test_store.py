"""Tests of the content-addressed ArtifactStore."""

import json

import pytest

from repro.errors import InvalidRequestError
from repro.service import (
    ArtifactStore,
    CompileRequest,
    FPSAClient,
    serve_request,
)


@pytest.fixture
def response():
    return serve_request(CompileRequest(model="MLP-500-100")).response


class TestSaveLoad:
    def test_save_and_reload(self, tmp_path, response):
        store = ArtifactStore(tmp_path)
        run_id = store.save(response)
        assert run_id in store
        assert len(store) == 1
        assert store.load(run_id) == response

    def test_content_addressing_dedupes(self, tmp_path, response):
        store = ArtifactStore(tmp_path)
        assert store.save(response) == store.save(response)
        assert len(store) == 1

    def test_content_addressing_ignores_cache_state(self, tmp_path):
        # the same request served cold and warm (different cache hit/miss
        # counters and pass timings) must land on the same run directory
        from repro.core.cache import StageCache

        cache = StageCache()
        request = CompileRequest(model="MLP-500-100", duplication_degree=2)
        cold = serve_request(request, cache=cache).response
        warm = serve_request(request, cache=cache).response
        assert cold.timings.cache_hits != warm.timings.cache_hits
        store = ArtifactStore(tmp_path)
        assert store.save(cold) == store.save(warm)
        assert len(store) == 1

    def test_distinct_requests_get_distinct_runs(self, tmp_path):
        store = ArtifactStore(tmp_path)
        a = serve_request(CompileRequest(model="MLP-500-100")).response
        b = serve_request(CompileRequest(model="MLP-500-100", duplication_degree=2)).response
        assert store.save(a) != store.save(b)
        assert len(store) == 2

    def test_bitstream_persisted(self, tmp_path):
        store = ArtifactStore(tmp_path)
        served = serve_request(
            CompileRequest(model="MLP-500-100", emit_bitstream=True)
        )
        bitstream = served.result.bitstream.to_json()
        run_id = store.save(served.response, bitstream_json=bitstream)
        stored = store.load_bitstream(run_id)
        assert stored == bitstream
        assert json.loads(stored)["model"] == "MLP-500-100"

    def test_missing_bitstream_is_none(self, tmp_path, response):
        store = ArtifactStore(tmp_path)
        assert store.load_bitstream(store.save(response)) is None

    def test_unknown_run_rejected(self, tmp_path):
        store = ArtifactStore(tmp_path)
        with pytest.raises(InvalidRequestError):
            store.load("no-such-run")

    def test_error_responses_are_also_persisted(self, tmp_path):
        store = ArtifactStore(tmp_path)
        failed = serve_request(CompileRequest(model="MLP-500-100", pe_budget=1)).response
        run_id = store.save(failed)
        assert store.load(run_id).error.code == "capacity_error"
        assert store.list_runs(status="error")[0].run_id == run_id


class TestIndex:
    def test_list_runs_filters(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.save(serve_request(CompileRequest(model="MLP-500-100")).response)
        store.save(serve_request(CompileRequest(model="LeNet")).response)
        assert {r.model for r in store.list_runs()} == {"MLP-500-100", "LeNet"}
        assert [r.model for r in store.list_runs(model="LeNet")] == ["LeNet"]
        assert store.latest("LeNet").model == "LeNet"
        assert store.latest("VGG16") is None

    def test_index_survives_reopen(self, tmp_path, response):
        run_id = ArtifactStore(tmp_path).save(response)
        reopened = ArtifactStore(tmp_path)
        assert run_id in reopened
        assert reopened.load(run_id) == response


class TestClientIntegration:
    def test_client_auto_persists(self, tmp_path):
        store = ArtifactStore(tmp_path)
        client = FPSAClient(store=store)
        response = client.compile(CompileRequest(model="MLP-500-100"))
        assert response.ok
        assert len(store) == 1
        assert store.load(store.list_runs()[0].run_id) == response

    def test_client_persists_bitstream(self, tmp_path):
        store = ArtifactStore(tmp_path)
        client = FPSAClient(store=store)
        client.compile(CompileRequest(model="MLP-500-100", emit_bitstream=True))
        record = store.list_runs()[0]
        assert record.has_bitstream
        assert store.load_bitstream(record.run_id) is not None

    def test_job_manager_persists(self, tmp_path):
        from repro.service import JobManager

        store = ArtifactStore(tmp_path)
        with JobManager(max_workers=2, use_processes=False, store=store) as jm:
            jm.submit_batch(["MLP-500-100", "LeNet"])
            jm.wait_all()
        assert len(store) == 2
