"""Tests of the versioned request/response wire schemas."""

import json

import pytest

from repro.errors import CapacityError, InvalidRequestError, UnknownModelError
from repro.service import (
    SCHEMA_VERSION,
    CompileRequest,
    CompileResponse,
    CompileTimings,
    ErrorPayload,
    ResultSummary,
    serve_request,
)


class TestCompileRequest:
    def test_defaults(self):
        request = CompileRequest(model="LeNet")
        assert request.schema_version == SCHEMA_VERSION
        assert request.duplication_degree == 1
        assert request.use_cache is True
        assert request.passes is None

    def test_json_round_trip(self):
        request = CompileRequest(
            model="LeNet",
            duplication_degree=8,
            detailed_schedule=True,
            passes=("synthesis", "mapping"),
            synthesis_options={"lower_pooling": False},
            tags={"sweep": "s1"},
        )
        rebuilt = CompileRequest.from_json(request.to_json())
        assert rebuilt == request
        # and the JSON itself is a plain object
        assert json.loads(request.to_json())["model"] == "LeNet"

    def test_passes_normalize_to_tuple(self):
        request = CompileRequest(model="LeNet", passes=["synthesis", "mapping"])
        assert request.passes == ("synthesis", "mapping")
        assert CompileRequest.from_dict(request.to_dict()) == request

    def test_unknown_schema_version_rejected(self):
        with pytest.raises(InvalidRequestError) as excinfo:
            CompileRequest(model="LeNet", schema_version=99)
        assert excinfo.value.details["got"] == 99
        payload = CompileRequest(model="LeNet").to_dict()
        payload["schema_version"] = 0
        with pytest.raises(InvalidRequestError):
            CompileRequest.from_dict(payload)

    def test_unknown_fields_rejected(self):
        payload = CompileRequest(model="LeNet").to_dict()
        payload["frobnicate"] = True
        with pytest.raises(InvalidRequestError) as excinfo:
            CompileRequest.from_dict(payload)
        assert "frobnicate" in str(excinfo.value)

    def test_invalid_values_rejected(self):
        with pytest.raises(InvalidRequestError):
            CompileRequest(model="")
        with pytest.raises(InvalidRequestError):
            CompileRequest(model="LeNet", duplication_degree=0)
        with pytest.raises(InvalidRequestError):
            CompileRequest(model="LeNet", pe_budget=0)
        with pytest.raises(InvalidRequestError):
            CompileRequest.from_dict({"duplication_degree": 2})

    def test_wrongly_typed_numerics_rejected(self):
        # JSON strings where integers belong must be a typed rejection,
        # not a raw TypeError from the range comparison
        with pytest.raises(InvalidRequestError):
            CompileRequest(model="LeNet", duplication_degree="4")
        with pytest.raises(InvalidRequestError):
            CompileRequest.from_dict({"model": "LeNet", "pe_budget": "128"})

    def test_malformed_json_rejected(self):
        with pytest.raises(InvalidRequestError):
            CompileRequest.from_json("{not json")
        with pytest.raises(InvalidRequestError):
            CompileRequest.from_json("[1, 2, 3]")

    def test_fingerprint_is_stable_and_ignores_tags(self):
        a = CompileRequest(model="LeNet", duplication_degree=4)
        b = CompileRequest(model="LeNet", duplication_degree=4, tags={"run": "x"})
        c = CompileRequest(model="LeNet", duplication_degree=8)
        assert a.fingerprint() == b.fingerprint()
        assert a.fingerprint() != c.fingerprint()

    def test_dedup_is_an_execution_knob_not_a_fingerprint_input(self):
        # dedup changes how fast artifacts are built, never what they are,
        # so requests differing only in it must coalesce/cache-hit together
        a = CompileRequest(model="LeNet")
        b = CompileRequest(model="LeNet", dedup=True)
        assert a.fingerprint() == b.fingerprint()
        assert CompileRequest.from_dict(b.to_dict()) == b
        assert b.compile_kwargs()["dedup"] is True
        with pytest.raises(InvalidRequestError):
            CompileRequest(model="LeNet", dedup="yes")


class TestServeAndRoundTrip:
    def test_full_flow_response_round_trips_losslessly(self):
        request = CompileRequest(
            model="LeNet",
            duplication_degree=4,
            detailed_schedule=True,
            run_pnr=True,
            emit_bitstream=True,
        )
        response = serve_request(request).response
        assert response.ok
        # every artifact section made it into the summary
        summary = response.summary
        for section in ("blocks", "performance", "bounds", "energy",
                        "pnr", "pipeline", "bitstream"):
            assert getattr(summary, section) is not None, section
        rebuilt = CompileResponse.from_json(response.to_json())
        assert rebuilt == response
        assert rebuilt.to_json() == response.to_json()

    def test_partial_compile_sections_are_none(self):
        request = CompileRequest(model="MLP-500-100", passes=("synthesis", "mapping"))
        response = serve_request(request).response
        assert response.ok
        assert response.summary.blocks is not None
        assert response.summary.performance is None
        assert response.summary.pnr is None
        assert CompileResponse.from_json(response.to_json()) == response

    def test_timings_carry_cache_counters(self):
        from repro.core.cache import StageCache

        cache = StageCache()
        request = CompileRequest(model="MLP-500-100", duplication_degree=2)
        cold = serve_request(request, cache=cache).response
        warm = serve_request(request, cache=cache).response
        assert cold.timings.cache_hits == 0
        assert cold.timings.cache_misses > 0
        assert warm.timings.cache_hits > 0
        assert warm.timings.cache_hits + warm.timings.cache_misses == len(
            warm.timings.passes
        )

    def test_failed_compile_maps_to_error_payload(self):
        response = serve_request(
            CompileRequest(model="MLP-500-100", pe_budget=1)
        ).response
        assert not response.ok
        assert response.summary is None
        assert response.error.code == "capacity_error"
        assert response.error.type == "CapacityError"
        rebuilt = CompileResponse.from_json(response.to_json())
        assert rebuilt == response
        with pytest.raises(CapacityError):
            rebuilt.raise_for_status()

    def test_unknown_model_maps_to_error_payload(self):
        response = serve_request(CompileRequest(model="NotAModel")).response
        assert response.error.code == "unknown_model"
        with pytest.raises(UnknownModelError):
            response.raise_for_status()

    def test_bad_pass_list_is_invalid_request_not_internal(self):
        response = serve_request(
            CompileRequest(model="MLP-500-100", passes=("bogus",))
        ).response
        assert response.error.code == "invalid_request"
        assert "bogus" in response.error.message

    def test_bad_synthesis_options_is_invalid_request(self):
        response = serve_request(
            CompileRequest(model="MLP-500-100", synthesis_options={"bogus": 1})
        ).response
        assert response.error.code == "invalid_request"
        assert response.error.details["synthesis_options"] == {"bogus": 1}

    def test_response_rejects_unknown_schema_version(self):
        response = serve_request(CompileRequest(model="MLP-500-100")).response
        payload = response.to_dict()
        payload["schema_version"] = 2
        with pytest.raises(InvalidRequestError):
            CompileResponse.from_dict(payload)

    def test_response_status_invariants(self):
        request = CompileRequest(model="MLP-500-100")
        with pytest.raises(InvalidRequestError):
            CompileResponse(request=request, status="ok")  # missing summary
        with pytest.raises(InvalidRequestError):
            CompileResponse(request=request, status="error")  # missing error
        with pytest.raises(InvalidRequestError):
            CompileResponse(
                request=request, status="maybe",
                summary=ResultSummary(model="MLP-500-100"),
            )


class TestErrorPayload:
    def test_non_fpsa_exception_becomes_internal(self):
        payload = ErrorPayload.from_exception(ZeroDivisionError("division by zero"))
        assert payload.code == "internal"
        assert payload.type == "ZeroDivisionError"
        assert payload.to_exception().message == "division by zero"

    def test_round_trip(self):
        payload = ErrorPayload(
            code="mapping_error", type="MappingError",
            message="no groups", details={"model": "X"},
        )
        assert ErrorPayload.from_dict(payload.to_dict()) == payload

    def test_missing_required_field_is_typed(self):
        with pytest.raises(InvalidRequestError) as excinfo:
            ErrorPayload.from_dict({"type": "MappingError", "message": "x"})
        assert excinfo.value.details["missing_field"] == "code"


class TestCompileTimings:
    def test_from_none_is_none(self):
        assert CompileTimings.from_pass_timings(None) is None

    def test_round_trip(self):
        from repro.core.pipeline import PassTiming

        timings = CompileTimings.from_pass_timings([
            PassTiming("synthesis", 0.25, False, ("coreops",)),
            PassTiming("mapping", 0.05, True, ("mapping",)),
        ])
        assert timings.cache_hits == 1
        assert timings.cache_misses == 1
        assert timings.total_seconds == pytest.approx(0.30)
        assert CompileTimings.from_dict(timings.to_dict()) == timings

    def test_pre_dedup_payload_still_parses(self):
        # stored responses written before the dedup counters existed lack
        # the keys entirely; they must rehydrate with zeroed counters
        payload = {
            "passes": [],
            "total_seconds": 0.1,
            "cache_hits": 2,
            "cache_misses": 1,
        }
        timings = CompileTimings.from_dict(payload)
        assert timings.dedup_hits == 0
        assert timings.dedup_misses == 0
        assert timings.dedup_hit_rate == 0.0

    def test_dedup_counters_round_trip(self):
        from repro.core.cache import CacheStats
        from repro.core.pipeline import PassTiming

        stats = CacheStats(dedup_hits=9, dedup_misses=1)
        timings = CompileTimings.from_pass_timings(
            [PassTiming("synthesis", 0.25, False, ("coreops",))],
            cache_stats=stats,
        )
        assert timings.dedup_hits == 9
        assert timings.dedup_hit_rate == pytest.approx(0.9)
        assert CompileTimings.from_dict(timings.to_dict()) == timings

    def test_truncated_payload_is_typed(self):
        # a hand-edited/truncated stored response must fail with the typed
        # error, not a raw KeyError
        with pytest.raises(InvalidRequestError):
            CompileTimings.from_dict({"passes": [], "cache_hits": 0, "cache_misses": 1})
        with pytest.raises(InvalidRequestError):
            CompileTimings.from_dict({
                "passes": [{"name": "synthesis"}],
                "total_seconds": 0.1, "cache_hits": 0, "cache_misses": 1,
            })
