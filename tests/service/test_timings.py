"""CompileTimings propagation and master-seed determinism.

Per-stage wall-clock timings must reach the wire-level
:class:`CompileResponse` for cache-miss *and* cache-hit compiles, survive
``to_dict``/``from_dict``, and carry the P&R-internal stage split; and a
request-level master ``seed`` must make repeated compiles bit-identical.
"""

from __future__ import annotations

import pytest

from repro.core.cache import StageCache
from repro.core.pipeline import CompileOptions
from repro.seeding import derive_seed
from repro.service import CompileRequest, CompileResponse, FPSAClient
from repro.service.schemas import CompileTimings


@pytest.fixture(scope="module")
def served_pair():
    """The same P&R request served cold (all misses) then warm (all hits)
    through one private stage cache."""
    client = FPSAClient(cache=StageCache())
    request = CompileRequest(model="MLP-500-100", run_pnr=True, seed=11)
    cold = client.serve(request)
    warm = client.serve(request)
    return cold, warm


class TestTimingsPropagation:
    def test_cold_compile_timings(self, served_pair):
        cold, _ = served_pair
        timings = cold.response.timings
        assert timings is not None
        assert timings.cache_misses == len(timings.passes)
        assert timings.cache_hits == 0
        assert timings.total_seconds >= 0.0
        assert all(p.seconds >= 0.0 for p in timings.passes)
        assert "pnr" in timings.seconds_by_stage()

    def test_warm_compile_timings(self, served_pair):
        _, warm = served_pair
        timings = warm.response.timings
        assert timings is not None
        # the expensive stages are content-addressed and must all hit; the
        # cheap analytic passes (perf, bounds) opt out of caching
        cached = {p.name for p in timings.passes if p.cached}
        assert {"synthesis", "mapping", "pnr"} <= cached
        assert timings.cache_hits == len(cached)
        assert timings.cache_hits >= 3
        assert all(p.seconds >= 0.0 for p in timings.passes)

    @pytest.mark.parametrize("which", ["cold", "warm"])
    def test_timings_round_trip(self, served_pair, which):
        served = served_pair[0] if which == "cold" else served_pair[1]
        timings = served.response.timings
        assert CompileTimings.from_dict(timings.to_dict()) == timings

    @pytest.mark.parametrize("which", ["cold", "warm"])
    def test_response_round_trip_preserves_timings(self, served_pair, which):
        served = served_pair[0] if which == "cold" else served_pair[1]
        revived = CompileResponse.from_json(served.response.to_json())
        assert revived.timings == served.response.timings

    def test_pnr_stage_split_on_summary(self, served_pair):
        cold, _ = served_pair
        pnr = cold.response.summary.pnr
        for stage in ("place", "rrgraph", "route", "timing"):
            assert pnr[f"{stage}_seconds"] >= 0.0
        # the split must roughly compose to the pnr pass wall time
        split = sum(v for k, v in pnr.items() if k.endswith("_seconds"))
        assert split <= cold.response.timings.seconds_by_stage()["pnr"] + 0.1

    def test_seconds_by_stage_matches_pass_list(self, served_pair):
        cold, _ = served_pair
        timings = cold.response.timings
        assert timings.seconds_by_stage() == {
            p.name: p.seconds for p in timings.passes
        }


class TestMasterSeed:
    def test_seed_round_trips_through_wire(self):
        request = CompileRequest(model="LeNet", seed=42)
        assert CompileRequest.from_json(request.to_json()).seed == 42

    def test_seed_changes_fingerprint(self):
        a = CompileRequest(model="LeNet", seed=1)
        b = CompileRequest(model="LeNet", seed=2)
        assert a.fingerprint() != b.fingerprint()

    def test_invalid_seed_rejected(self):
        from repro.errors import InvalidRequestError

        with pytest.raises(InvalidRequestError):
            CompileRequest(model="LeNet", seed="not-a-seed")

    def test_effective_pnr_seed(self):
        assert CompileOptions(pnr_seed=5).effective_pnr_seed() == 5
        derived = CompileOptions(pnr_seed=5, seed=9).effective_pnr_seed()
        assert derived == derive_seed(9, "pnr")
        assert derived != 5

    def test_derived_seeds_are_stage_specific(self):
        assert derive_seed(0, "pnr") != derive_seed(0, "montecarlo")
        assert derive_seed(0, "pnr") != derive_seed(1, "pnr")
        assert derive_seed(3, "pnr") == derive_seed(3, "pnr")

    def test_repeated_compiles_are_bit_identical(self):
        """Two compiles of the same seeded request on fresh caches agree on
        every placement coordinate and every quality number."""
        results = []
        for _ in range(2):
            client = FPSAClient(cache=False)
            served = client.serve(
                CompileRequest(model="MLP-500-100", run_pnr=True, seed=3)
            )
            served.response.raise_for_status()
            results.append(served)
        a, b = results
        assert a.result.pnr.placement.positions == b.result.pnr.placement.positions
        assert a.result.pnr.total_wirelength == b.result.pnr.total_wirelength
        assert a.result.pnr.critical_path_ns == b.result.pnr.critical_path_ns
        assert a.response.summary.pnr["total_wirelength"] == (
            b.response.summary.pnr["total_wirelength"]
        )

    def test_distinct_seeds_give_distinct_streams(self):
        client = FPSAClient(cache=False)
        a = client.serve(CompileRequest(model="MLP-500-100", run_pnr=True, seed=1))
        b = client.serve(CompileRequest(model="MLP-500-100", run_pnr=True, seed=2))
        # distinct master seeds must reach the placer as distinct streams
        assert a.result.pnr.placement.positions != b.result.pnr.placement.positions
