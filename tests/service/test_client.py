"""Tests of the in-process FPSAClient."""

import pytest

from repro.core.cache import StageCache
from repro.errors import CapacityError, UnknownModelError
from repro.service import CompileRequest, FPSAClient


class TestCompile:
    def test_compile_accepts_request_name_and_dict(self):
        client = FPSAClient()
        for request in (
            CompileRequest(model="MLP-500-100"),
            "MLP-500-100",
            {"model": "MLP-500-100"},
        ):
            response = client.compile(request)
            assert response.ok
            assert response.request.model == "MLP-500-100"

    def test_compile_kwargs_with_name(self):
        response = FPSAClient().compile("MLP-500-100", duplication_degree=2)
        assert response.request.duplication_degree == 2
        assert response.summary.duplication_degree == 2

    def test_compile_never_raises_on_failure(self):
        response = FPSAClient().compile(CompileRequest(model="MLP-500-100", pe_budget=1))
        assert not response.ok
        assert response.error.code == "capacity_error"

    def test_client_shares_cache_across_compiles(self):
        client = FPSAClient(cache=StageCache())
        request = CompileRequest(model="MLP-500-100", duplication_degree=3)
        assert client.compile(request).timings.cache_hits == 0
        assert client.compile(request).timings.cache_hits > 0


class TestDeploy:
    def test_deploy_returns_live_artifacts(self):
        result = FPSAClient().deploy(CompileRequest(model="MLP-500-100"))
        assert result.mapping is not None
        assert result.performance is not None
        assert result.throughput_samples_per_s > 0

    def test_deploy_raises_typed_errors(self):
        client = FPSAClient()
        with pytest.raises(CapacityError):
            client.deploy(CompileRequest(model="MLP-500-100", pe_budget=1))
        with pytest.raises(UnknownModelError):
            client.deploy("NotAModel")

    def test_synthesis_options_flow_through(self):
        client = FPSAClient()
        with_pool = client.deploy(
            CompileRequest(model="LeNet", passes=("synthesis",),
                           synthesis_options={"lower_pooling": True})
        )
        without_pool = client.deploy(
            CompileRequest(model="LeNet", passes=("synthesis",),
                           synthesis_options={"lower_pooling": False})
        )
        pool_groups = [
            g for g in with_pool.coreops.groups()
            if g.kind in ("pool_max", "pool_avg")
        ]
        assert pool_groups
        assert len(without_pool.coreops) < len(with_pool.coreops)


class TestCompileBatch:
    def test_sequential_batch_preserves_order(self):
        responses = FPSAClient().compile_batch(
            [CompileRequest(model="MLP-500-100", duplication_degree=d) for d in (1, 2)]
        )
        assert [r.request.duplication_degree for r in responses] == [1, 2]
        assert all(r.ok for r in responses)

    def test_parallel_batch_matches_sequential(self):
        requests = [
            CompileRequest(model="MLP-500-100", duplication_degree=d) for d in (1, 2)
        ]
        sequential = FPSAClient().compile_batch(requests, jobs=1)
        parallel = FPSAClient().compile_batch(requests, jobs=2)
        for a, b in zip(sequential, parallel, strict=True):
            assert a.request == b.request
            assert a.summary.performance == b.summary.performance
            assert a.summary.blocks == b.summary.blocks

    def test_batch_mixes_ok_and_error(self):
        responses = FPSAClient().compile_batch([
            CompileRequest(model="MLP-500-100"),
            CompileRequest(model="MLP-500-100", pe_budget=1),
        ])
        assert [r.ok for r in responses] == [True, False]
