"""Tests of the JobManager lifecycle (thread pool: fast, shares the cache)."""

import pytest

from repro.errors import CapacityError, InvalidRequestError
from repro.service import CompileRequest, JobManager, JobState


@pytest.fixture
def manager():
    with JobManager(max_workers=2, use_processes=False) as jm:
        yield jm


class TestLifecycle:
    def test_submit_and_result(self, manager):
        job_id = manager.submit(CompileRequest(model="MLP-500-100"))
        response = manager.result(job_id)
        assert response.ok
        assert manager.status(job_id).state is JobState.DONE

    def test_submit_accepts_names_and_dicts(self, manager):
        ids = manager.submit_batch([
            "MLP-500-100",
            {"model": "MLP-500-100", "duplication_degree": 2},
        ])
        responses = manager.wait_all()
        assert [r.ok for r in responses] == [True, True]
        assert responses[1].request.duplication_degree == 2
        assert [manager.status(i).state for i in ids] == [JobState.DONE] * 2

    def test_results_in_submission_order(self, manager):
        ids = manager.submit_batch(
            [CompileRequest(model="MLP-500-100", duplication_degree=d) for d in (1, 2, 3)]
        )
        responses = [manager.result(i) for i in ids]
        assert [r.request.duplication_degree for r in responses] == [1, 2, 3]

    def test_failed_job_carries_error_payload(self, manager):
        job_id = manager.submit(CompileRequest(model="MLP-500-100", pe_budget=1))
        response = manager.result(job_id)
        assert not response.ok
        assert manager.status(job_id).state is JobState.FAILED
        assert manager.status(job_id).error.code == "capacity_error"
        with pytest.raises(CapacityError):
            response.raise_for_status()

    def test_unknown_job_id_rejected(self, manager):
        with pytest.raises(InvalidRequestError):
            manager.status("job-9999")
        with pytest.raises(InvalidRequestError):
            manager.result("job-9999")

    def test_jobs_listing(self, manager):
        manager.submit_batch(["MLP-500-100", "MLP-500-100"])
        manager.wait_all()
        infos = manager.jobs()
        assert len(infos) == 2
        assert all(info.state.finished for info in infos)
        assert [info.job_id for info in infos] == sorted(info.job_id for info in infos)

    def test_invalid_max_workers_rejected(self):
        with pytest.raises(InvalidRequestError):
            JobManager(max_workers=0)

    def test_result_timeout_raises_timeout_error(self):
        # saturate a single worker with an uncached heavier compile so the
        # second job is still queued when we ask for it with a zero budget
        with JobManager(max_workers=1, use_processes=False, cache=False) as jm:
            first = jm.submit("GoogLeNet")
            second = jm.submit("MLP-500-100")
            with pytest.raises(TimeoutError):
                jm.result(second, timeout=0)
            assert jm.result(first).ok
            assert jm.result(second).ok  # still completes normally afterwards

    def test_submit_after_shutdown_leaves_no_orphan(self):
        jm = JobManager(max_workers=1, use_processes=False)
        jm.shutdown()
        with pytest.raises(RuntimeError):
            jm.submit("MLP-500-100")
        # the failed submission must not register a forever-QUEUED job
        assert jm.jobs() == []


class TestCancel:
    def test_cancel_queued_job(self):
        # a single worker saturated by the first job leaves the rest QUEUED
        with JobManager(max_workers=1, use_processes=False) as jm:
            ids = jm.submit_batch(["MLP-500-100"] * 4)
            cancelled_any = False
            for job_id in reversed(ids):
                if jm.cancel(job_id):
                    cancelled_any = True
                    response = jm.result(job_id)
                    assert not response.ok
                    assert response.error.code == "cancelled"
                    assert jm.status(job_id).state is JobState.FAILED
                    break
            # the rest still finish
            for job_id in ids[:1]:
                assert jm.result(job_id).ok
        # cancellation is timing-dependent; at minimum the API must not blow up
        assert cancelled_any or all(jm.status(i).state.finished for i in ids)

    def test_cancel_finished_job_returns_false(self, manager):
        job_id = manager.submit("MLP-500-100")
        manager.result(job_id)
        assert manager.cancel(job_id) is False


class TestCacheForwarding:
    def test_disabled_cache_reaches_workers(self):
        # cache=False must survive the worker boundary: two identical
        # requests on one worker see zero stage-cache hits
        with JobManager(max_workers=1, use_processes=False, cache=False) as jm:
            ids = jm.submit_batch([CompileRequest(model="MLP-500-100")] * 2)
            responses = [jm.result(i) for i in ids]
        assert all(r.timings.cache_hits == 0 for r in responses)

    def test_shared_cache_instance_hits_across_jobs(self):
        from repro.core.cache import StageCache

        cache = StageCache()
        with JobManager(max_workers=1, use_processes=False, cache=cache) as jm:
            ids = jm.submit_batch([CompileRequest(model="MLP-500-100")] * 2)
            responses = [jm.result(i) for i in ids]
        assert responses[1].timings.cache_hits > 0


class TestProcessPool:
    def test_process_pool_round_trip(self):
        # one real process-pool run: requests and responses cross the
        # pickle boundary as wire dicts
        with JobManager(max_workers=2) as jm:
            ids = jm.submit_batch([
                CompileRequest(model="MLP-500-100"),
                CompileRequest(model="MLP-500-100", pe_budget=1),
            ])
            ok, failed = [jm.result(i) for i in ids]
        assert ok.ok
        assert not failed.ok
        assert failed.error.code == "capacity_error"
