"""End-to-end integration tests crossing every layer of the stack."""

import pytest

from repro.core.compiler import FPSACompiler
from repro.graph import GraphBuilder
from repro.models import PAPER_TABLE3, build_model
from repro.perf.analytic import FPSAArchitecture
from repro.synthesizer import synthesize


class TestCustomModelEndToEnd:
    def test_user_defined_cnn_deploys(self):
        """A model built through the public GraphBuilder API goes through
        synthesis, mapping, scheduling, P&R and performance evaluation."""
        builder = GraphBuilder("custom-cnn", input_shape=(3, 16, 16))
        builder.conv(16, 3, padding=1).maxpool(2).conv(32, 3, padding=1).maxpool(2)
        builder.flatten().dense(64, relu=True).dense(10).softmax()
        graph = builder.build()

        compiler = FPSACompiler()
        result = compiler.compile(
            graph, duplication_degree=4, detailed_schedule=True,
            run_pnr=True, pnr_channel_width=24,
        )
        assert result.throughput_samples_per_s > 0
        assert result.latency_us > 0
        assert result.pnr is not None and result.pnr.routing.legal
        assert result.pipeline is not None
        assert result.mapping.netlist.n_pe >= result.coreops.min_pes()

    def test_residual_model_deploys(self):
        builder = GraphBuilder("custom-resnet", input_shape=(8, 8, 8))
        trunk = builder.checkpoint()
        builder.conv(8, 3, padding=1, relu=False, name="branch", from_=trunk)
        builder.add(builder.current, trunk)
        builder.global_avgpool().dense(4).softmax()
        result = FPSACompiler().compile(builder.build(), duplication_degree=2)
        assert result.throughput_samples_per_s > 0


class TestPaperHeadlines:
    def test_thousandfold_speedup_headline(self, vgg16_coreops, vgg16_graph):
        """The abstract's headline: up to ~1000x inference speedup over
        PRIME at equal area (we accept anything within [300x, 3000x])."""
        from repro.baselines.prime import PrimeArchitecture
        from repro.perf.analytic import sweep_area

        ops = vgg16_graph.total_ops()
        areas = [5000.0, 10000.0]
        prime = sweep_area(vgg16_coreops, ops, PrimeArchitecture(), areas)
        fpsa = sweep_area(vgg16_coreops, ops, FPSAArchitecture(), areas)
        ratios = [
            f.real_ops / p.real_ops
            for f, p in zip(fpsa, prime, strict=True)
            if p.real_ops > 0
        ]
        best = max(ratios)
        assert 300 < best < 3000

    def test_computational_density_headline(self, config):
        """The conclusion's headline: ~38 TOPS/mm^2 computational density."""
        assert config.pe.computational_density_ops_per_mm2 / 1e12 == pytest.approx(38.0, rel=0.01)

    @pytest.mark.parametrize("name", ["AlexNet", "GoogLeNet"])
    def test_imagenet_models_full_stack_sanity(self, name):
        graph = build_model(name)
        coreops = synthesize(graph)
        result = FPSACompiler().compile(graph, duplication_degree=16)
        reference = PAPER_TABLE3[name]
        # within an order of magnitude of the published 64x-duplication point
        assert result.area_mm2 < reference.area_mm2 * 3
        assert result.throughput_samples_per_s > 0
        assert coreops.total_weights() >= graph.total_params()
