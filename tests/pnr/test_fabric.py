"""Tests of the fabric grid."""

import pytest

from repro.mapper.netlist import Block, BlockType, FunctionBlockNetlist
from repro.pnr.fabric import FabricGrid


class TestFabricGrid:
    def test_dimensions_and_sites(self):
        fabric = FabricGrid(4, 3)
        assert fabric.n_sites == 12
        assert len(fabric.sites()) == 12
        assert fabric.contains(0, 0)
        assert fabric.contains(3, 2)
        assert not fabric.contains(4, 0)
        assert not fabric.contains(-1, 0)

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            FabricGrid(0, 3)

    def test_io_sites_on_periphery(self):
        fabric = FabricGrid(3, 3)
        for site in fabric.io_sites():
            assert site.io
            assert not fabric.contains(site.x, site.y)
        assert len(fabric.io_sites()) == 2 * 3 + 2 * 3

    def test_site_lookup(self):
        fabric = FabricGrid(3, 3)
        site = fabric.site(1, 2)
        assert site.position == (1, 2)
        with pytest.raises(ValueError):
            fabric.site(5, 5)

    def test_for_netlist_has_enough_sites(self):
        netlist = FunctionBlockNetlist("m")
        for i in range(17):
            netlist.add_block(Block(f"pe{i}", BlockType.PE))
        netlist.add_block(Block("__input__", BlockType.IO))
        fabric = FabricGrid.for_netlist(netlist)
        assert fabric.n_sites >= 17

    def test_manhattan(self):
        assert FabricGrid.manhattan((0, 0), (3, 4)) == 7
