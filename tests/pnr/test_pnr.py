"""Tests of the end-to-end placement & routing flow."""

import pytest

from repro.pnr.pnr import PlaceAndRoute


class TestPlaceAndRoute:
    @pytest.fixture(scope="class")
    def mlp_pnr(self, mlp_coreops, config):
        from repro.mapper.mapper import SpatialTemporalMapper

        mapping = SpatialTemporalMapper(config).map(mlp_coreops, duplication_degree=2)
        flow = PlaceAndRoute(config, channel_width=24, seed=2)
        return flow.run(mapping.netlist), mapping

    def test_routing_is_legal(self, mlp_pnr):
        result, _ = mlp_pnr
        assert result.routing.legal

    def test_every_net_routed(self, mlp_pnr):
        result, mapping = mlp_pnr
        routable = [n for n in mapping.netlist.nets if n.sinks]
        assert len(result.routing.nets) == len(routable)

    def test_every_block_placed(self, mlp_pnr):
        result, mapping = mlp_pnr
        assert set(result.placement.positions) == set(mapping.netlist.blocks)

    def test_timing_feeds_performance_model(self, mlp_pnr, config):
        result, _ = mlp_pnr
        assert result.critical_path_ns > 0
        assert result.mean_route_segments >= 1
        # the measured critical path should be of the same order as the
        # analytic model's assumed hop delay for a fabric of this size
        analytic = config.routing.hop_delay_ns(8)
        assert result.critical_path_ns < 5 * analytic

    def test_summary(self, mlp_pnr):
        result, _ = mlp_pnr
        assert "fabric" in result.summary()
