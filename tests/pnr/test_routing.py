"""Tests of the PathFinder router and timing analysis."""

import pytest

from repro.arch.params import RoutingParams
from repro.mapper.netlist import Block, BlockType, FunctionBlockNetlist, Net
from repro.pnr.fabric import FabricGrid
from repro.pnr.placement import Placement
from repro.pnr.routing import PathFinderRouter, RoutingError
from repro.pnr.rrgraph import RoutingResourceGraph
from repro.pnr.timing import analyze_timing


def grid_netlist_and_placement(n: int, fabric: FabricGrid):
    """n x n blocks placed on a grid, each driving its right/down neighbours."""
    netlist = FunctionBlockNetlist("grid")
    placement = Placement(fabric)
    for x in range(n):
        for y in range(n):
            name = f"pe{x}_{y}"
            netlist.add_block(Block(name, BlockType.PE))
            placement.positions[name] = (x, y)
    idx = 0
    for x in range(n):
        for y in range(n):
            sinks = []
            if x + 1 < n:
                sinks.append(f"pe{x+1}_{y}")
            if y + 1 < n:
                sinks.append(f"pe{x}_{y+1}")
            if sinks:
                netlist.add_net(Net(f"net{idx}", driver=f"pe{x}_{y}", sinks=tuple(sinks)))
                idx += 1
    return netlist, placement


class TestPathFinderRouter:
    def test_routes_simple_grid_legally(self):
        fabric = FabricGrid(3, 3)
        netlist, placement = grid_netlist_and_placement(3, fabric)
        graph = RoutingResourceGraph(fabric, channel_width=8)
        result = PathFinderRouter(graph).route(netlist, placement)
        assert result.legal
        assert result.total_wirelength > 0
        assert len(result.nets) == len(netlist.nets)

    def test_adjacent_blocks_use_short_routes(self):
        fabric = FabricGrid(2, 1)
        netlist = FunctionBlockNetlist("pair")
        netlist.add_block(Block("a", BlockType.PE))
        netlist.add_block(Block("b", BlockType.PE))
        netlist.add_net(Net("n", driver="a", sinks=("b",)))
        placement = Placement(fabric, positions={"a": (0, 0), "b": (1, 0)})
        graph = RoutingResourceGraph(fabric, channel_width=4)
        result = PathFinderRouter(graph).route(netlist, placement)
        assert result.nets["n"].wirelength <= 2

    def test_multi_sink_net_forms_tree(self):
        fabric = FabricGrid(3, 3)
        netlist = FunctionBlockNetlist("fanout")
        for name in ("src", "s1", "s2", "s3"):
            netlist.add_block(Block(name, BlockType.PE))
        netlist.add_net(Net("n", driver="src", sinks=("s1", "s2", "s3")))
        placement = Placement(
            fabric,
            positions={"src": (1, 1), "s1": (0, 0), "s2": (2, 2), "s3": (2, 0)},
        )
        graph = RoutingResourceGraph(fabric, channel_width=4)
        result = PathFinderRouter(graph).route(netlist, placement)
        net = result.nets["n"]
        assert set(net.sink_paths) == {(0, 0), (2, 2), (2, 0)}
        # a tree shares wires: wirelength strictly less than 3 separate routes
        assert net.wirelength < 3 * 4

    def test_insufficient_channel_width_raises(self):
        fabric = FabricGrid(2, 1)
        netlist = FunctionBlockNetlist("congested")
        netlist.add_block(Block("a", BlockType.PE))
        netlist.add_block(Block("b", BlockType.PE))
        # many parallel 2-terminal nets through a width-1 channel
        for i in range(8):
            netlist.add_net(Net(f"n{i}", driver="a", sinks=("b",)))
        placement = Placement(fabric, positions={"a": (0, 0), "b": (1, 0)})
        graph = RoutingResourceGraph(fabric, channel_width=1)
        with pytest.raises(RoutingError):
            PathFinderRouter(graph, max_iterations=5).route(netlist, placement)

    def test_congestion_negotiation_resolves_conflicts(self):
        fabric = FabricGrid(2, 2)
        netlist = FunctionBlockNetlist("negotiate")
        for name in ("a", "b", "c", "d"):
            netlist.add_block(Block(name, BlockType.PE))
        netlist.add_net(Net("n0", driver="a", sinks=("b",)))
        netlist.add_net(Net("n1", driver="c", sinks=("d",)))
        netlist.add_net(Net("n2", driver="a", sinks=("d",)))
        netlist.add_net(Net("n3", driver="c", sinks=("b",)))
        placement = Placement(
            fabric, positions={"a": (0, 0), "b": (1, 0), "c": (0, 1), "d": (1, 1)}
        )
        graph = RoutingResourceGraph(fabric, channel_width=2)
        result = PathFinderRouter(graph).route(netlist, placement)
        assert result.legal
        assert result.max_channel_occupancy() <= 2


class TestTiming:
    def test_timing_report_from_routing(self):
        fabric = FabricGrid(3, 3)
        netlist, placement = grid_netlist_and_placement(3, fabric)
        graph = RoutingResourceGraph(fabric, channel_width=8)
        routing = PathFinderRouter(graph).route(netlist, placement)
        report = analyze_timing(routing, RoutingParams())
        assert report.critical_path_ns > 0
        assert report.mean_delay_ns <= report.critical_path_ns
        assert report.critical_net in routing.nets
        assert report.mean_segments > 0

    def test_empty_routing(self):
        from repro.pnr.routing import RoutingResult

        report = analyze_timing(RoutingResult())
        assert report.critical_path_ns == 0.0

    def test_spike_cycle_bounded_by_pe_cycle(self):
        fabric = FabricGrid(2, 2)
        netlist, placement = grid_netlist_and_placement(2, fabric)
        graph = RoutingResourceGraph(fabric, channel_width=8)
        routing = PathFinderRouter(graph).route(netlist, placement)
        report = analyze_timing(routing)
        assert report.spike_cycle_ns(pe_cycle_ns=2.443) >= 2.443
