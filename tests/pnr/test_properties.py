"""Property-based invariants of the P&R hot path.

Randomized netlists and move sequences check the invariants the optimized
implementations must uphold:

* placements are bijective (no two blocks share a site) and respect the
  core/I/O site split,
* every net is routed and no routing-resource wire exceeds its unit
  capacity in a legal result,
* the placer's incremental delta-cost evaluation agrees exactly with a
  from-scratch recomputation after any sequence of moves, swaps, commits
  and rejects.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mapper.netlist import Block, BlockType, FunctionBlockNetlist, Net
from repro.pnr.fabric import FabricGrid
from repro.pnr.placement import PlacementCostModel, SimulatedAnnealingPlacer
from repro.pnr.routing import PathFinderRouter
from repro.pnr.rrgraph import RoutingResourceGraph


def random_netlist(rng: random.Random, n_blocks: int, n_nets: int, max_fanout: int):
    """A random connected-ish netlist of PE blocks plus one I/O pair."""
    netlist = FunctionBlockNetlist("random")
    names = [f"pe{i}" for i in range(n_blocks)]
    for name in names:
        netlist.add_block(Block(name, BlockType.PE))
    netlist.add_block(Block("__in__", BlockType.IO))
    netlist.add_net(Net("io", driver="__in__", sinks=(rng.choice(names),)))
    for i in range(n_nets):
        driver = rng.choice(names)
        fanout = rng.randint(1, max_fanout)
        sinks = tuple(rng.sample(names, min(fanout, len(names))))
        netlist.add_net(Net(f"n{i}", driver=driver, sinks=sinks))
    return netlist


netlist_params = st.tuples(
    st.integers(min_value=2, max_value=16),   # blocks
    st.integers(min_value=1, max_value=10),   # nets
    # fanouts beyond _BBOX_TRACK_THRESHOLD (12) exercise the incremental
    # bounding-box path of the cost model, not just the rescan path
    st.integers(min_value=1, max_value=15),   # max fanout
    st.integers(min_value=0, max_value=2**16),  # rng seed
)


class TestPlacementInvariants:
    @settings(max_examples=30, deadline=None)
    @given(params=netlist_params)
    def test_placement_is_bijective(self, params):
        n_blocks, n_nets, max_fanout, seed = params
        netlist = random_netlist(random.Random(seed), n_blocks, n_nets, max_fanout)
        fabric = FabricGrid.for_netlist(netlist)
        placement = SimulatedAnnealingPlacer(seed=seed).place(netlist, fabric)

        assert set(placement.positions) == set(netlist.blocks)
        sites = list(placement.positions.values())
        assert len(sites) == len(set(sites)), "two blocks share a site"
        for name, (x, y) in placement.positions.items():
            if netlist.blocks[name].type == BlockType.IO:
                assert not fabric.contains(x, y), "I/O block on a core site"
            else:
                assert fabric.contains(x, y), "core block off the fabric"


class TestDeltaCostInvariant:
    @settings(max_examples=30, deadline=None)
    @given(
        params=netlist_params,
        n_moves=st.integers(min_value=1, max_value=60),
    )
    def test_delta_equals_full_recomputation(self, params, n_moves):
        """After any random move sequence the incrementally-tracked total
        equals a from-scratch sweep, and every proposed delta is exact."""
        n_blocks, n_nets, max_fanout, seed = params
        rng = random.Random(seed)
        netlist = random_netlist(rng, n_blocks, n_nets, max_fanout)
        span = max(4, n_blocks)
        positions = {
            name: (rng.randrange(span), rng.randrange(span))
            for name in netlist.blocks
        }
        model = PlacementCostModel(netlist, positions)
        assert model.total == model.full_cost()

        names = list(netlist.blocks)
        for _ in range(n_moves):
            block = rng.choice(names)
            swap = rng.choice(names) if rng.random() < 0.5 else None
            if swap == block:
                swap = None
            target = (rng.randrange(span), rng.randrange(span))
            before = model.total
            delta = model.propose(block, target, swap)
            if rng.random() < 0.5:
                model.commit()
                assert model.total == before + delta
            else:
                model.reject()
                assert model.total == before
            assert model.total == model.full_cost()

    def test_high_fanout_nets_use_bbox_tracking(self):
        """Nets above the tracking threshold keep exact incremental state."""
        rng = random.Random(7)
        netlist = random_netlist(rng, 20, 4, 18)
        positions = {
            name: (rng.randrange(10), rng.randrange(10)) for name in netlist.blocks
        }
        model = PlacementCostModel(netlist, positions)
        assert model._bbox, "expected at least one bbox-tracked net"
        names = list(netlist.blocks)
        for _ in range(300):
            block = rng.choice(names)
            swap = rng.choice(names) if rng.random() < 0.5 else None
            if swap == block:
                swap = None
            model.propose(block, (rng.randrange(10), rng.randrange(10)), swap)
            model.commit() if rng.random() < 0.7 else model.reject()
            assert model.total == model.full_cost()


class TestRoutingInvariants:
    @settings(max_examples=15, deadline=None)
    @given(params=netlist_params)
    def test_legal_routing_routes_every_net_within_capacity(self, params):
        n_blocks, n_nets, max_fanout, seed = params
        netlist = random_netlist(random.Random(seed), n_blocks, n_nets, max_fanout)
        fabric = FabricGrid.for_netlist(netlist)
        placement = SimulatedAnnealingPlacer(seed=seed).place(netlist, fabric)
        graph = RoutingResourceGraph(fabric, channel_width=16)
        result = PathFinderRouter(graph).route(netlist, placement)

        assert result.legal
        routable = [net for net in netlist.nets if net.sinks]
        assert set(result.nets) == {net.name for net in routable}

        # every sink of every net has a driver-to-sink path in the tree
        for net in routable:
            routed = result.nets[net.name]
            sink_positions = {placement.position(s) for s in net.sinks}
            assert sink_positions == set(routed.sink_paths)
            for pos, path in routed.sink_paths.items():
                assert path, f"empty path to sink {pos}"
                assert path[-1].kind == "IPIN"
                assert (path[-1].x, path[-1].y) == pos
                assert all(node in routed.nodes for node in path)

        # capacity: in a legal routing no wire is claimed by two nets
        usage: dict = {}
        for name, routed in result.nets.items():
            for node in routed.nodes:
                if node.is_wire:
                    usage[node] = usage.get(node, 0) + 1
        assert all(count <= 1 for count in usage.values()), (
            "a wire node is claimed by two nets in a 'legal' routing"
        )
