"""Tests of the simulated-annealing placer."""

import pytest

from repro.mapper.netlist import Block, BlockType, FunctionBlockNetlist, Net
from repro.pnr.fabric import FabricGrid
from repro.pnr.placement import Placement, SimulatedAnnealingPlacer


def chain_netlist(n_blocks: int) -> FunctionBlockNetlist:
    netlist = FunctionBlockNetlist("chain")
    for i in range(n_blocks):
        netlist.add_block(Block(f"pe{i}", BlockType.PE))
    for i in range(n_blocks - 1):
        netlist.add_net(Net(f"net{i}", driver=f"pe{i}", sinks=(f"pe{i+1}",)))
    return netlist


class TestPlacement:
    def test_net_hpwl(self):
        fabric = FabricGrid(4, 4)
        placement = Placement(fabric, positions={"a": (0, 0), "b": (3, 2)})
        net = Net("n", driver="a", sinks=("b",))
        assert placement.net_hpwl(net) == 5

    def test_missing_block_raises(self):
        placement = Placement(FabricGrid(2, 2))
        with pytest.raises(KeyError):
            placement.position("ghost")


class TestSimulatedAnnealingPlacer:
    def test_all_blocks_placed_on_distinct_sites(self):
        netlist = chain_netlist(12)
        placer = SimulatedAnnealingPlacer(seed=0)
        placement = placer.place(netlist)
        positions = list(placement.positions.values())
        assert len(positions) == 12
        assert len(set(positions)) == 12

    def test_io_blocks_on_periphery(self):
        netlist = chain_netlist(4)
        netlist.add_block(Block("__input__", BlockType.IO))
        netlist.add_net(Net("io", driver="__input__", sinks=("pe0",)))
        fabric = FabricGrid(4, 4)
        placement = SimulatedAnnealingPlacer(seed=1).place(netlist, fabric)
        x, y = placement.position("__input__")
        assert not fabric.contains(x, y)

    def test_placement_improves_over_random(self):
        """The annealer should end with a wirelength no worse than the
        initial random placement (and usually much better)."""
        import random

        netlist = chain_netlist(20)
        fabric = FabricGrid(6, 6)
        placer = SimulatedAnnealingPlacer(seed=3, moves_per_block=20)
        random_placement = placer._initial_placement(netlist, fabric, random.Random(3))
        annealed = placer.place(netlist, fabric)
        assert annealed.total_wirelength(netlist.nets) <= random_placement.total_wirelength(
            netlist.nets
        )

    def test_chain_placement_is_compact(self):
        """A 9-block chain on a 3x3 fabric admits a wirelength-9 snake; the
        annealer should get reasonably close."""
        netlist = chain_netlist(9)
        fabric = FabricGrid(3, 3)
        placement = SimulatedAnnealingPlacer(seed=5, moves_per_block=50).place(netlist, fabric)
        assert placement.total_wirelength(netlist.nets) <= 14

    def test_too_many_blocks_rejected(self):
        netlist = chain_netlist(10)
        with pytest.raises(ValueError):
            SimulatedAnnealingPlacer().place(netlist, FabricGrid(3, 3))

    def test_deterministic_given_seed(self):
        netlist = chain_netlist(10)
        a = SimulatedAnnealingPlacer(seed=7).place(netlist, FabricGrid(4, 4))
        b = SimulatedAnnealingPlacer(seed=7).place(netlist, FabricGrid(4, 4))
        assert a.positions == b.positions

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            SimulatedAnnealingPlacer(cooling=1.5)
        with pytest.raises(ValueError):
            SimulatedAnnealingPlacer(moves_per_block=0)
