"""Tests of the routing-resource graph."""

import pytest

from repro.pnr.fabric import FabricGrid
from repro.pnr.rrgraph import RoutingResourceGraph, RRNode


@pytest.fixture(scope="module")
def small_rrg():
    return RoutingResourceGraph(FabricGrid(3, 3), channel_width=4)


class TestRoutingResourceGraph:
    def test_channel_width_validated(self):
        with pytest.raises(ValueError):
            RoutingResourceGraph(FabricGrid(2, 2), channel_width=0)

    def test_wire_count(self, small_rrg):
        # channels at x,y in -1..2 -> 4x4 positions, 2 directions, 4 tracks
        assert small_rrg.wire_count() == 4 * 4 * 2 * 4

    def test_block_pins_exist(self, small_rrg):
        assert small_rrg.opin(1, 1) in small_rrg
        assert small_rrg.ipin(2, 0) in small_rrg

    def test_opin_connects_to_adjacent_wires(self, small_rrg):
        neighbors = small_rrg.neighbors(small_rrg.opin(1, 1))
        assert neighbors
        assert all(n.is_wire for n in neighbors)
        # four surrounding channels x 4 tracks
        assert len(neighbors) == 16

    def test_wires_reach_ipins(self, small_rrg):
        wire = RRNode("H", 1, 1, 0)
        neighbors = small_rrg.neighbors(wire)
        assert any(n.kind == "IPIN" for n in neighbors)

    def test_switchbox_preserves_track(self, small_rrg):
        wire = RRNode("H", 0, 0, 2)
        for neighbor in small_rrg.neighbors(wire):
            if neighbor.is_wire:
                assert neighbor.track == 2

    def test_unknown_node_raises(self, small_rrg):
        with pytest.raises(KeyError):
            small_rrg.neighbors(RRNode("H", 99, 99, 0))

    def test_connectivity_source_to_sink(self, small_rrg):
        """Breadth-first search must reach any input pin from any output pin."""
        from collections import deque

        start = small_rrg.opin(0, 0)
        target = small_rrg.ipin(2, 2)
        seen = {start}
        queue = deque([start])
        found = False
        while queue:
            node = queue.popleft()
            if node == target:
                found = True
                break
            for neighbor in small_rrg.neighbors(node):
                if neighbor not in seen:
                    seen.add(neighbor)
                    queue.append(neighbor)
        assert found
