"""Golden differential tests for the optimized P&R hot path.

Each golden JSON file under ``tests/pnr/golden/`` records the solution
quality (placement HPWL, routed wirelength, critical path) the *seed*
implementation produced for one zoo model at a fixed seed, plus the
tolerance within which an optimized implementation must stay.  Any change
to the placer or router that silently degrades solution quality fails
here, no matter how much faster it is.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.mapper.mapper import SpatialTemporalMapper
from repro.models.zoo import build_model
from repro.pnr.pnr import PlaceAndRoute
from repro.synthesizer.synthesizer import synthesize

GOLDEN_DIR = Path(__file__).parent / "golden"
GOLDEN_FILES = sorted(GOLDEN_DIR.glob("*.json"))


def load_golden(path: Path) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


@pytest.fixture(scope="module")
def pnr_results():
    """P&R results per golden case, computed once for all assertions."""
    cache: dict[str, tuple] = {}

    def run(golden: dict):
        key = f"{golden['model']}-d{golden['duplication_degree']}"
        if key not in cache:
            graph = build_model(golden["model"])
            mapping = SpatialTemporalMapper().map(
                synthesize(graph), duplication_degree=golden["duplication_degree"]
            )
            flow = PlaceAndRoute(
                channel_width=golden["channel_width"], seed=golden["seed"]
            )
            cache[key] = (mapping.netlist, flow.run(mapping.netlist))
        return cache[key]

    return run


def test_golden_files_exist():
    assert GOLDEN_FILES, f"no golden files in {GOLDEN_DIR}"


@pytest.mark.parametrize(
    "path", GOLDEN_FILES, ids=[p.stem for p in GOLDEN_FILES]
)
class TestGoldenQuality:
    def test_netlist_matches_golden(self, path, pnr_results):
        golden = load_golden(path)
        netlist, _ = pnr_results(golden)
        assert len(netlist.blocks) == golden["blocks"]
        assert len(netlist.nets) == golden["nets"]

    def test_routing_is_legal(self, path, pnr_results):
        golden = load_golden(path)
        _, result = pnr_results(golden)
        assert result.routing.legal

    def test_placement_quality(self, path, pnr_results):
        golden = load_golden(path)
        netlist, result = pnr_results(golden)
        tolerance = golden["tolerance"]["relative_quality"]
        hpwl = result.placement.total_wirelength(netlist.nets)
        assert hpwl <= golden["placement_hpwl"] * (1.0 + tolerance), (
            f"placement HPWL {hpwl} worse than golden "
            f"{golden['placement_hpwl']} by more than {tolerance:.0%}"
        )

    def test_routed_wirelength_quality(self, path, pnr_results):
        golden = load_golden(path)
        _, result = pnr_results(golden)
        tolerance = golden["tolerance"]["relative_quality"]
        assert result.total_wirelength <= golden["total_wirelength"] * (
            1.0 + tolerance
        ), (
            f"routed wirelength {result.total_wirelength} worse than golden "
            f"{golden['total_wirelength']} by more than {tolerance:.0%}"
        )

    def test_critical_path_quality(self, path, pnr_results):
        golden = load_golden(path)
        _, result = pnr_results(golden)
        budget = (
            golden["critical_path_ns"]
            + golden["tolerance"]["absolute_critical_path_ns"]
        )
        assert result.critical_path_ns <= budget, (
            f"critical path {result.critical_path_ns:.3f} ns worse than "
            f"golden {golden['critical_path_ns']:.3f} ns + tolerance"
        )

    def test_channel_occupancy_within_width(self, path, pnr_results):
        golden = load_golden(path)
        _, result = pnr_results(golden)
        assert result.routing.max_channel_occupancy() <= golden["channel_width"]

    def test_reproducible_within_process(self, path, pnr_results):
        """The same netlist and seed must give bit-identical results."""
        golden = load_golden(path)
        netlist, result = pnr_results(golden)
        again = PlaceAndRoute(
            channel_width=golden["channel_width"], seed=golden["seed"]
        ).run(netlist)
        assert again.placement.positions == result.placement.positions
        assert again.total_wirelength == result.total_wirelength
        assert again.critical_path_ns == result.critical_path_ns
