"""Differential and property tests of the parallel P&R engine.

The engine's contract is *bit-identity across execution knobs*: any
``jobs`` value and either ``jit`` setting must produce the identical
placement and routing for the same seed.  The differential tests pin that
contract on real zoo netlists; the property tests pin the structural
invariants it rests on — the region grid tiles the fabric disjointly, the
batched annealer's merged move sequence replays serially to the same
state, congestion domains never share routing-resource nodes, and the
geometry-compiled RR graph equals the dict-built one node for node.
"""

from __future__ import annotations

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mapper.mapper import SpatialTemporalMapper
from repro.mapper.netlist import Block, BlockType, FunctionBlockNetlist, Net
from repro.models.zoo import build_model
from repro.pnr import kernels
from repro.pnr.fabric import FabricGrid
from repro.pnr.options import PnROptions
from repro.pnr.placement import (
    ParallelAnnealingPlacer,
    PlacementCostModel,
    RegionGrid,
    _NetGeometry,
    _ReplicaState,
)
from repro.pnr.pnr import PlaceAndRoute
from repro.pnr.routing import PathFinderRouter
from repro.pnr.rrgraph import CompiledRRGraph, RoutingResourceGraph
from repro.synthesizer.synthesizer import synthesize

CHANNEL_WIDTH = 24
SEED = 0

#: the zoo slice of the differential tests: small enough to P&R several
#: times per test run, large enough that LeNet-d2 exercises multi-domain
#: routing and >1-region placement
ZOO_CASES = [("MLP-500-100", 1), ("LeNet", 1), ("LeNet", 2)]


@pytest.fixture(scope="module")
def zoo_netlists():
    """Function-block netlists of the differential zoo, built once."""
    cache = {}
    for model, degree in ZOO_CASES:
        mapping = SpatialTemporalMapper().map(
            synthesize(build_model(model)), duplication_degree=degree
        )
        cache[(model, degree)] = mapping.netlist
    return cache


def run_pnr(netlist, **options):
    return PlaceAndRoute(
        channel_width=CHANNEL_WIDTH, seed=SEED, options=PnROptions(**options)
    ).run(netlist)


def assert_identical(a, b):
    """Bit-identity of two P&R results: placement, routed trees, timing."""
    assert a.placement.positions == b.placement.positions
    assert set(a.routing.nets) == set(b.routing.nets)
    for name, net in a.routing.nets.items():
        assert net.nodes == b.routing.nets[name].nodes
        assert net.sink_paths == b.routing.nets[name].sink_paths
    assert a.routing.nodes_expanded == b.routing.nodes_expanded
    assert a.routing.iterations == b.routing.iterations
    assert a.total_wirelength == b.total_wirelength
    assert a.critical_path_ns == b.critical_path_ns


@pytest.mark.parametrize("case", ZOO_CASES, ids=lambda c: f"{c[0]}-d{c[1]}")
class TestJobsInvariance:
    def test_jobs_bit_identical(self, case, zoo_netlists, monkeypatch):
        """jobs=4 (threaded batch evaluation and domain routing) must be
        bit-identical to jobs=1.  ``cpu_count`` is pinned so the clamp in
        ``effective_jobs`` cannot silently serialize the threaded path on
        small CI machines."""
        netlist = zoo_netlists[case]
        serial = run_pnr(netlist, jobs=1)
        monkeypatch.setattr("repro.pnr.options.os.cpu_count", lambda: 4)
        threaded = run_pnr(netlist, jobs=4)
        assert_identical(serial, threaded)

    def test_jit_path_bit_identical(self, case, zoo_netlists, monkeypatch):
        """The kernel code path (numba-compiled where available, plain
        Python otherwise) must match the native numpy/heapq path.  Forcing
        ``HAVE_NUMBA`` exercises the kernel branch even without numba —
        the kernels are written to run unjitted."""
        netlist = zoo_netlists[case]
        native = run_pnr(netlist, jit=False)
        monkeypatch.setattr(kernels, "HAVE_NUMBA", True)
        jitted = run_pnr(netlist, jit=True)
        assert_identical(native, jitted)


class TestEngineSelection:
    def test_jit_env_flag_parsing(self, monkeypatch):
        for value, expected in (
            ("", False), ("0", False), ("off", False), ("no", False),
            ("1", True), ("true", True), ("anything", True),
        ):
            monkeypatch.setenv("REPRO_PNR_JIT", value)
            assert PnROptions().jit_enabled() is expected

    def test_effective_jobs_clamps_to_cpu_count(self, monkeypatch):
        monkeypatch.setattr("repro.pnr.options.os.cpu_count", lambda: 2)
        assert PnROptions(jobs=16).effective_jobs() == 2
        assert PnROptions(jobs=1).effective_jobs() == 1
        assert PnROptions().effective_jobs() == 1

    def test_serial_engine_uses_classic_placer(self):
        from repro.pnr.placement import SimulatedAnnealingPlacer

        flow = PlaceAndRoute(options=PnROptions(engine="serial"))
        assert isinstance(flow.placer, SimulatedAnnealingPlacer)
        flow = PlaceAndRoute(options=PnROptions())
        assert isinstance(flow.placer, ParallelAnnealingPlacer)

    def test_invalid_options_rejected(self):
        with pytest.raises(ValueError):
            PnROptions(jobs=0)
        with pytest.raises(ValueError):
            PnROptions(engine="turbo")


class TestJobsInvarianceOfKeys:
    """``pnr_jobs`` is a pure execution knob: same artifacts, same cache
    keys, same request fingerprints for any value."""

    def test_compile_artifacts_jobs_invariant(self):
        from repro.core.compiler import FPSACompiler

        graph = build_model("MLP-500-100")
        results = [
            FPSACompiler(cache=False).compile(
                graph, run_pnr=True, pnr_channel_width=16, seed=SEED,
                pnr_jobs=jobs,
            )
            for jobs in (None, 1, 4)
        ]
        first = results[0].pnr
        for other in results[1:]:
            assert other.pnr.placement.positions == first.placement.positions
            assert other.pnr.total_wirelength == first.total_wirelength
            assert other.pnr.critical_path_ns == first.critical_path_ns

    def test_pnr_cache_key_jobs_invariant(self):
        from repro.core.compiler import FPSACompiler
        from repro.core.pipeline import CompileContext, CompileOptions
        from repro.pnr.passes import PnRPass

        compiler = FPSACompiler(cache=False)
        graph = build_model("MLP-500-100")
        front = compiler.compile(graph, passes=("synthesis", "mapping"))

        def key(jobs):
            ctx = CompileContext(
                graph=graph,
                config=compiler.config,
                options=CompileOptions(run_pnr=True, seed=SEED, pnr_jobs=jobs),
                synthesis_options=compiler.synthesis_options,
            )
            ctx.mapping = front.mapping
            return PnRPass().cache_key(ctx)

        assert key(None) == key(1) == key(8)

    def test_request_fingerprint_jobs_invariant(self):
        from repro.service import CompileRequest

        base = CompileRequest(model="LeNet", run_pnr=True, seed=SEED)
        for jobs in (1, 4, 32):
            assert (
                CompileRequest(
                    model="LeNet", run_pnr=True, seed=SEED, pnr_jobs=jobs
                ).fingerprint()
                == base.fingerprint()
            )

    def test_request_pnr_jobs_validated(self):
        from repro.errors import InvalidRequestError
        from repro.service import CompileRequest

        for bad in (0, -2, True, "four"):
            with pytest.raises(InvalidRequestError):
                CompileRequest(model="LeNet", pnr_jobs=bad)


class TestRegionGridProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        width=st.integers(min_value=1, max_value=14),
        height=st.integers(min_value=1, max_value=14),
        target_span=st.integers(min_value=1, max_value=6),
    )
    def test_regions_disjointly_cover_the_fabric(self, width, height, target_span):
        grid = RegionGrid.for_fabric(width, height, target_span=target_span)
        groups = grid.sites_by_region()
        assert len(groups) == grid.n_regions
        seen = set()
        for region_id, sites in enumerate(groups):
            for site in sites:
                assert site not in seen, "regions overlap"
                seen.add(site)
                assert grid.region_of(*site) == region_id
        assert seen == {(x, y) for x in range(width) for y in range(height)}

    def test_region_shape_independent_of_jobs(self):
        # the grid is a pure function of the fabric: nothing else feeds it
        a = RegionGrid.for_fabric(9, 7)
        b = RegionGrid.for_fabric(9, 7)
        assert a == b


def random_netlist(rng: random.Random, n_blocks: int, n_nets: int, max_fanout: int):
    """A random netlist of PE blocks plus one I/O pair (mirrors the
    generator of test_properties.py)."""
    netlist = FunctionBlockNetlist("random")
    names = [f"pe{i}" for i in range(n_blocks)]
    for name in names:
        netlist.add_block(Block(name, BlockType.PE))
    netlist.add_block(Block("__in__", BlockType.IO))
    netlist.add_net(Net("io", driver="__in__", sinks=(rng.choice(names),)))
    for i in range(n_nets):
        driver = rng.choice(names)
        fanout = rng.randint(1, max_fanout)
        sinks = tuple(rng.sample(names, min(fanout, len(names))))
        netlist.add_net(Net(f"n{i}", driver=driver, sinks=sinks))
    return netlist


class TestMergedMovesReplaySerially:
    @settings(max_examples=25, deadline=None)
    @given(
        params=st.tuples(
            st.integers(min_value=2, max_value=24),   # blocks
            st.integers(min_value=1, max_value=12),   # nets
            st.integers(min_value=1, max_value=6),    # max fanout
            st.integers(min_value=0, max_value=2**16),  # seed
        ),
        temperature=st.floats(min_value=0.01, max_value=50.0),
        n_batches=st.integers(min_value=1, max_value=4),
    )
    def test_batch_moves_replay_through_cost_model(
        self, params, temperature, n_batches
    ):
        """The accepted moves of a batch, applied one by one in merge order
        through the *serial* incremental cost model, must reach the exact
        state (coordinates and total cost) the batched engine reached."""
        n_blocks, n_nets, max_fanout, seed = params
        netlist = random_netlist(random.Random(seed), n_blocks, n_nets, max_fanout)
        fabric = FabricGrid.for_netlist(netlist)
        geometry = _NetGeometry(netlist)
        state = _ReplicaState(geometry, fabric, np.random.default_rng(seed))

        model = PlacementCostModel(
            netlist,
            {
                name: (int(state.xs[i]), int(state.ys[i]))
                for i, name in enumerate(geometry.block_names)
            },
        )
        region = RegionGrid.for_fabric(fabric.width, fabric.height)
        region_of_site = np.array(
            [
                region.region_of(site // fabric.height, site % fabric.height)
                for site in range(fabric.width * fabric.height)
            ],
            dtype=np.int64,
        )
        placer = ParallelAnnealingPlacer(seed=seed)
        rlim = max(fabric.width, fabric.height)
        for _ in range(n_batches):
            *_, moves = placer._batch(
                geometry, state, fabric, region_of_site,
                temperature, rlim, batch=32, pool=None, use_jit=False,
                collect_moves=True,
            )
            for block, tx, ty, swap in moves:
                model.propose(
                    geometry.block_names[block],
                    (tx, ty),
                    None if swap == -1 else geometry.block_names[swap],
                )
                model.commit()

        replayed = model.positions()
        for i, name in enumerate(geometry.block_names):
            assert replayed[name] == (int(state.xs[i]), int(state.ys[i]))
        assert model.full_cost() == state.total


def window_overlaps(a, b) -> bool:
    alox, ahix, aloy, ahiy = a
    blox, bhix, bloy, bhiy = b
    return not (ahix < blox or bhix < alox or ahiy < bloy or bhiy < aloy)


class TestCongestionDomainProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        windows=st.lists(
            st.tuples(
                st.integers(min_value=-2, max_value=10),
                st.integers(min_value=0, max_value=6),
                st.integers(min_value=-2, max_value=10),
                st.integers(min_value=0, max_value=6),
            ).map(lambda t: (t[0], t[0] + t[1], t[2], t[2] + t[3])),
            min_size=1,
            max_size=14,
        )
    )
    def test_domains_partition_and_isolate(self, windows):
        domains = PathFinderRouter._domains(windows)
        flat = sorted(i for dom in domains for i in dom)
        assert flat == list(range(len(windows))), "not a partition"
        for a in range(len(domains)):
            for b in range(a + 1, len(domains)):
                for i in domains[a]:
                    for j in domains[b]:
                        assert not window_overlaps(windows[i], windows[j]), (
                            f"nets {i} and {j} overlap across domains"
                        )

    def test_disjoint_windows_share_no_rr_nodes(self):
        """The invariant the domain router rests on: nets whose windows
        are disjoint can never touch the same routing-resource node, so
        their congestion state is independent."""
        compiled = CompiledRRGraph.from_geometry(6, 6, 2)

        def nodes_in(window):
            lo_x, hi_x, lo_y, hi_y = window
            return {
                i
                for i, node in enumerate(compiled.nodes)
                if lo_x <= node.x <= hi_x and lo_y <= node.y <= hi_y
            }

        a, b = (0, 2, 0, 5), (3, 5, 0, 5)
        assert not window_overlaps(a, b)
        assert nodes_in(a)
        assert nodes_in(b)
        assert nodes_in(a).isdisjoint(nodes_in(b))


class TestCompiledGraphEquivalence:
    @pytest.mark.parametrize("shape", [(2, 2, 2), (3, 4, 3), (5, 3, 4)])
    def test_from_geometry_equals_dict_built(self, shape):
        """The geometry-compiled RR graph must match the dict-built one:
        same node ids (heap tie-breaking keys on them), same per-node edge
        sets, same attributes.  Neighbor *order* may differ — the search's
        ``(f, g, id)`` heap keys are unique, so expansion order does not
        depend on it."""
        width, height, tracks = shape
        geometric = CompiledRRGraph.from_geometry(width, height, tracks)
        dict_built = CompiledRRGraph(
            RoutingResourceGraph(
                FabricGrid(width, height), channel_width=tracks
            )._adjacency
        )
        assert geometric.nodes == dict_built.nodes
        assert [sorted(adj) for adj in geometric.neighbors] == [
            sorted(adj) for adj in dict_built.neighbors
        ]
        assert geometric.base_cost == dict_built.base_cost
        assert geometric.x == dict_built.x
        assert geometric.y == dict_built.y
        assert np.array_equal(geometric.indptr, dict_built.indptr)
