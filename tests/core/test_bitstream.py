"""Tests of the chip-configuration (bitstream) generation."""

import json

import pytest

from repro.config_gen import FPSABitstream, generate_bitstream
from repro.core.compiler import FPSACompiler
from repro.models import build_lenet, build_mlp_500_100


@pytest.fixture(scope="module")
def lenet_bitstream_deployment():
    compiler = FPSACompiler()
    result = compiler.compile(
        build_lenet(), duplication_degree=2, run_pnr=True,
        pnr_channel_width=24, emit_bitstream=True,
    )
    return result


class TestGenerateBitstream:
    def test_one_crossbar_config_per_pe(self, lenet_bitstream_deployment):
        bitstream = lenet_bitstream_deployment.bitstream
        assert bitstream is not None
        assert len(bitstream.crossbars) == lenet_bitstream_deployment.mapping.netlist.n_pe

    def test_crossbar_tiles_within_crossbar_size(self, lenet_bitstream_deployment, config):
        for crossbar in lenet_bitstream_deployment.bitstream.crossbars:
            assert 0 < crossbar.tile_rows <= config.pe.rows
            assert 0 < crossbar.tile_cols <= config.pe.logical_cols
            assert crossbar.cells_per_weight == config.pe.cells_per_weight

    def test_weight_bits_cover_model_weights(self, lenet_bitstream_deployment, config):
        """Every stored weight uses cells_per_weight x 2 x cell_bits bits, so
        the bitstream must hold at least the model's weights."""
        bitstream = lenet_bitstream_deployment.bitstream
        graph = lenet_bitstream_deployment.graph
        per_weight = config.pe.cells_per_weight * 2 * config.pe.cell_bits
        assert bitstream.weight_configuration_bits >= graph.total_params() * per_weight

    def test_routing_configs_from_pnr(self, lenet_bitstream_deployment):
        bitstream = lenet_bitstream_deployment.bitstream
        routed = lenet_bitstream_deployment.pnr.routing.nets
        assert len(bitstream.routing) == len(routed)
        assert all(r.switches_on > 0 for r in bitstream.routing)

    def test_control_and_buffers_present(self, lenet_bitstream_deployment):
        bitstream = lenet_bitstream_deployment.bitstream
        mapping = lenet_bitstream_deployment.mapping
        assert bitstream.control.clbs == mapping.control.clbs_needed
        assert len(bitstream.buffers) == mapping.netlist.n_smb

    def test_without_pnr_uses_estimated_routing(self, config):
        from repro.mapper.mapper import SpatialTemporalMapper
        from repro.synthesizer import synthesize

        coreops = synthesize(build_mlp_500_100())
        mapping = SpatialTemporalMapper(config).map(coreops, duplication_degree=1)
        bitstream = generate_bitstream(mapping, pnr=None, config=config)
        assert len(bitstream.routing) == len(mapping.netlist.nets)
        assert bitstream.total_configuration_bits > 0

    def test_json_roundtrip(self, lenet_bitstream_deployment):
        bitstream = lenet_bitstream_deployment.bitstream
        text = bitstream.to_json()
        parsed = json.loads(text)
        assert parsed["model"] == "LeNet"
        restored = FPSABitstream.from_json(text)
        assert restored.total_configuration_bits == bitstream.total_configuration_bits
        assert len(restored.crossbars) == len(bitstream.crossbars)

    def test_summary_and_deployment_summary(self, lenet_bitstream_deployment):
        assert "bitstream" in lenet_bitstream_deployment.bitstream.summary()
        assert "bitstream" in lenet_bitstream_deployment.summary()
