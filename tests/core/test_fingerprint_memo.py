"""Tests of memoized artifact fingerprints and their invalidation safety."""

from repro.arch.params import FPSAConfig
from repro.core.cache import (
    config_fingerprint,
    coreops_fingerprint,
    graph_fingerprint,
    netlist_fingerprint,
)
from repro.graph.builder import GraphBuilder
from repro.graph.ops import Dense
from repro.mapper.netlist import Block, BlockType, FunctionBlockNetlist, Net
from repro.synthesizer.coreop import CoreOpGraph, WeightGroup


def _mlp_graph(name="memo-test"):
    builder = GraphBuilder(name, (784,))
    builder.dense(100, relu=True).dense(10)
    return builder.graph, builder.current


def _count_reprs(monkeypatch):
    """Count `fingerprint` invocations through the memoization layer."""
    import repro.core.cache as cache_mod

    calls = {"n": 0}
    original = cache_mod.fingerprint

    def counting(*parts):
        calls["n"] += 1
        return original(*parts)

    monkeypatch.setattr(cache_mod, "fingerprint", counting)
    return calls


class TestGraphFingerprintMemo:
    def test_repeated_lookups_hit_the_memo(self, monkeypatch):
        graph, _ = _mlp_graph()
        calls = _count_reprs(monkeypatch)
        first = graph_fingerprint(graph)
        assert calls["n"] == 1
        for _ in range(5):
            assert graph_fingerprint(graph) == first
        assert calls["n"] == 1  # no re-repr of the O(model) structure

    def test_mutation_invalidates(self):
        graph, last = _mlp_graph()
        before = graph_fingerprint(graph)
        graph.add("extra", Dense(10), [last])
        after = graph_fingerprint(graph)
        assert after != before
        # and the new digest matches a from-scratch computation
        graph2, last2 = _mlp_graph()
        graph2.add("extra", Dense(10), [last2])
        assert graph_fingerprint(graph2) == after

    def test_identical_graphs_agree(self):
        a, _ = _mlp_graph("same")
        b, _ = _mlp_graph("same")
        assert graph_fingerprint(a) == graph_fingerprint(b)


class TestCoreopsFingerprintMemo:
    def _coreops(self):
        graph = CoreOpGraph("m")
        graph.add_group(
            WeightGroup(
                name="g1", source="n1", kind="matmul", rows=4, cols=4, reuse=1
            )
        )
        return graph

    def test_memo_and_invalidation(self, monkeypatch):
        coreops = self._coreops()
        calls = _count_reprs(monkeypatch)
        first = coreops_fingerprint(coreops)
        assert coreops_fingerprint(coreops) == first
        assert calls["n"] == 1
        coreops.add_group(
            WeightGroup(
                name="g2", source="n2", kind="matmul", rows=2, cols=2, reuse=1
            )
        )
        assert coreops_fingerprint(coreops) != first
        coreops.add_edge("g1", "g2", 4)
        third = coreops_fingerprint(coreops)
        assert third != first
        fresh = self._coreops()
        fresh.add_group(
            WeightGroup(
                name="g2", source="n2", kind="matmul", rows=2, cols=2, reuse=1
            )
        )
        fresh.add_edge("g1", "g2", 4)
        assert coreops_fingerprint(fresh) == third


class TestNetlistFingerprintMemo:
    def _netlist(self):
        netlist = FunctionBlockNetlist(model="m")
        netlist.add_block(Block(name="pe0", type=BlockType.PE))
        netlist.add_block(Block(name="pe1", type=BlockType.PE))
        return netlist

    def test_memo_and_invalidation(self, monkeypatch):
        netlist = self._netlist()
        calls = _count_reprs(monkeypatch)
        first = netlist_fingerprint(netlist)
        assert netlist_fingerprint(netlist) == first
        assert calls["n"] == 1
        netlist.add_net(Net(name="n0", driver="pe0", sinks=("pe1",)))
        second = netlist_fingerprint(netlist)
        assert second != first
        netlist.add_block(Block(name="smb0", type=BlockType.SMB))
        assert netlist_fingerprint(netlist) != second

    def test_pickle_roundtrip_keeps_digest(self):
        import pickle

        netlist = self._netlist()
        digest = netlist_fingerprint(netlist)
        clone = pickle.loads(pickle.dumps(netlist))
        assert netlist_fingerprint(clone) == digest
        clone.add_net(Net(name="n0", driver="pe0", sinks=("pe1",)))
        assert netlist_fingerprint(clone) != digest


class TestConfigFingerprintMemo:
    def test_memoized_and_stable(self, monkeypatch):
        config = FPSAConfig()
        calls = _count_reprs(monkeypatch)
        first = config_fingerprint(config)
        assert config_fingerprint(config) == first
        assert calls["n"] <= 1  # at most the initial computation
        assert config_fingerprint(FPSAConfig()) == first
