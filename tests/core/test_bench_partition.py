"""Partitioned configurations in the perf-regression benchmark harness."""

from __future__ import annotations

from repro.bench import BenchEntry, BenchReport, compare_reports, run_bench


def test_run_bench_includes_partitioned_entries():
    report = run_bench(
        models=["MLP-500-100"], channel_width=16, partition_chips=(2,)
    )
    assert [(e.model, e.num_chips) for e in report.entries] == [
        ("MLP-500-100", 1),
        ("MLP-500-100", 2),
    ]
    partitioned = report.entry("MLP-500-100", 1, num_chips=2)
    assert partitioned is not None
    assert partitioned.quality["cut_size"] >= 1
    assert partitioned.quality["cut_values_per_sample"] > 0
    assert partitioned.quality["total_wirelength"] > 0
    # per-shard P&R timings roll up into the partitioned wall-time
    assert partitioned.pnr_seconds > 0
    assert any(k.startswith("pnr@chip") for k in partitioned.stage_seconds)

    # the report round-trips with the chip count intact
    again = BenchReport.from_dict(report.to_dict())
    assert again.entry("MLP-500-100", 1, num_chips=2) is not None
    assert again.entry("MLP-500-100", 1, num_chips=1) is not None


def _entry(num_chips: int, **quality) -> BenchEntry:
    return BenchEntry(
        model="M",
        duplication_degree=1,
        channel_width=16,
        seed=0,
        num_chips=num_chips,
        stage_seconds={"pnr@chip0": 1.0} if num_chips > 1 else {"pnr": 1.0},
        quality=quality,
    )


def test_compare_reports_guards_cut_size():
    baseline = BenchReport(entries=[_entry(2, cut_size=2.0, cut_values_per_sample=100.0)])
    worse = BenchReport(entries=[_entry(2, cut_size=4.0, cut_values_per_sample=100.0)])
    regressions = compare_reports(worse, baseline)
    assert any("cut_size" in r and "(2 chips)" in r for r in regressions)
    assert compare_reports(baseline, baseline) == []


def test_compare_reports_does_not_mix_chip_configs():
    # a 2-chip entry must only ever compare against the 2-chip baseline
    baseline = BenchReport(entries=[_entry(1, total_wirelength=10.0)])
    current = BenchReport(entries=[_entry(2, total_wirelength=1000.0)])
    assert compare_reports(current, baseline) == []
