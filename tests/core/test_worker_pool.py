"""Tests of the persistent warm worker pool and the cross-process cache.

These tests spawn real worker processes; the models are the cheapest zoo
entries so the whole module stays in the seconds range.
"""

import os

from repro.core.api import WorkerPool, deploy_many, deploy_model, run_pool
from repro.service import CompileRequest, FPSAClient


def _pid(_payload):
    return os.getpid()


def _compile_with_stats(model):
    """Worker: compile through the worker's private cache (fork-clean —
    the process default cache may be inherited pre-warmed from the parent),
    return the per-compile cache-stat delta (picklable summary only)."""
    from repro.core.api import _worker_private_cache

    result = deploy_model(model, cache=_worker_private_cache())
    stats = result.cache_stats
    return {
        "throughput": result.throughput_samples_per_s,
        "hits": stats.hits,
        "misses": stats.misses,
        "shared_hits": stats.shared_hits,
        "shared_misses": stats.shared_misses,
    }


class TestWorkerPool:
    def test_worker_pids_stable_across_batches(self):
        # the warm-pool contract: consecutive deploy_many batches land on
        # the same worker processes (no per-batch pool spawn)
        with WorkerPool(max_workers=2) as pool:
            first = deploy_many(["MLP-500-100", "LeNet"], pool=pool)
            pids_after_first = pool.worker_pids()
            second = deploy_many(["MLP-500-100", "LeNet"], pool=pool)
            pids_after_second = pool.worker_pids()
        assert pids_after_first == pids_after_second
        assert len(pids_after_first) >= 1
        assert os.getpid() not in pids_after_first
        for a, b in zip(first, second, strict=True):
            assert a.throughput_samples_per_s == b.throughput_samples_per_s

    def test_run_pool_reuses_given_pool(self):
        with WorkerPool(max_workers=1) as pool:
            pids = set(run_pool(_pid, [None] * 4, pool=pool))
            pids |= set(run_pool(_pid, [None] * 4, pool=pool))
        assert len(pids) == 1
        assert os.getpid() not in pids

    def test_results_match_sequential(self):
        sequential = deploy_many(["MLP-500-100", ("LeNet", 2)], jobs=1)
        with WorkerPool(max_workers=2) as pool:
            pooled = deploy_many(["MLP-500-100", ("LeNet", 2)], pool=pool)
        for a, b in zip(sequential, pooled, strict=True):
            assert a.throughput_samples_per_s == b.throughput_samples_per_s
            assert a.area_mm2 == b.area_mm2
            assert a.mapping.netlist.n_pe == b.mapping.netlist.n_pe


class TestSharedCacheAcrossProcesses:
    def test_hit_from_a_different_process(self, tmp_path):
        """Worker N's synthesis serves worker M's lookup: two *fresh*
        single-worker pools over one shared directory — the second pool's
        worker is a different process and must hit the shared tier."""
        with WorkerPool(max_workers=1, shared_cache_dir=str(tmp_path)) as pool:
            first = run_pool(_compile_with_stats, ["MLP-500-100"], pool=pool)[0]
            first_pid = pool.worker_pids()[0]
        with WorkerPool(max_workers=1, shared_cache_dir=str(tmp_path)) as pool:
            second = run_pool(_compile_with_stats, ["MLP-500-100"], pool=pool)[0]
            second_pid = pool.worker_pids()[0]
        assert first_pid != second_pid
        assert first["shared_hits"] == 0  # nothing published yet: cold
        assert second["shared_hits"] > 0  # served by the first worker's work
        assert second["hits"] >= second["shared_hits"]
        # the shared tier must not change what gets computed
        assert second["throughput"] == first["throughput"]

    def test_partitioned_artifacts_identical_under_shared_cache(self, tmp_path):
        """1-chip and partitioned compiles must stay bit-identical whether
        artifacts come from a live pass run or the shared disk tier."""
        from repro.core.cache import StageCache
        from repro.core.shared_cache import SharedStageCache

        def serve(cache):
            client = FPSAClient(cache=cache)
            plain = client.compile(
                CompileRequest(model="CIFAR-VGG17", seed=7, run_pnr=True)
            )
            parted = client.compile(
                CompileRequest(model="CIFAR-VGG17", seed=7, num_chips=2)
            )
            return plain, parted

        def quality(response):
            # wall-clock fields ride the pnr summary; strip them — the
            # bit-identity claim is about artifacts, not timings
            data = response.summary.to_dict()
            for section in data.values():
                if isinstance(section, dict):
                    for key in [k for k in section if k.endswith("_seconds")]:
                        del section[key]
            return data

        cold_plain, cold_parted = serve(StageCache())
        # a fresh in-memory cache over the now-populated shared directory:
        # every cacheable pass is served from disk pickles
        shared_dir = str(tmp_path)
        warm_cache = StageCache(shared=SharedStageCache(shared_dir))
        serve(StageCache(shared=SharedStageCache(shared_dir)))  # populate
        warm_plain, warm_parted = serve(warm_cache)
        assert warm_cache.stats.shared_hits > 0
        assert quality(warm_plain) == quality(cold_plain)
        assert quality(warm_parted) == quality(cold_parted)
