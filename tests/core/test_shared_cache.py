"""Tests of the cross-process shared stage-cache tier."""

import os
import pickle

import pytest

from repro.core.cache import CacheStats, StageCache
from repro.core.shared_cache import (
    SHARED_CACHE_ENV,
    SHARED_CACHE_MAX_BYTES_ENV,
    SharedStageCache,
    shared_cache_from_env,
)


class TestSharedStageCache:
    def test_roundtrip(self, tmp_path):
        cache = SharedStageCache(str(tmp_path))
        assert cache.get("a" * 64) is None
        assert cache.put("a" * 64, {"coreops": [1, 2, 3]})
        assert cache.get("a" * 64) == {"coreops": [1, 2, 3]}
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.puts == 1

    def test_second_handle_sees_entries(self, tmp_path):
        # two handles onto one directory model two processes
        writer = SharedStageCache(str(tmp_path))
        reader = SharedStageCache(str(tmp_path))
        writer.put("k" * 64, {"mapping": {"x": 1}})
        assert reader.get("k" * 64) == {"mapping": {"x": 1}}
        assert reader.stats.hits == 1

    def test_unpicklable_artifacts_are_skipped(self, tmp_path):
        cache = SharedStageCache(str(tmp_path))
        assert not cache.put("b" * 64, {"bad": lambda: None})
        assert cache.stats.errors == 1
        assert cache.get("b" * 64) is None

    def test_corrupt_entry_is_dropped(self, tmp_path):
        cache = SharedStageCache(str(tmp_path))
        cache.put("c" * 64, {"x": 1})
        path = cache._path("c" * 64)
        with open(path, "wb") as handle:
            handle.write(b"not a pickle")
        assert cache.get("c" * 64) is None
        assert cache.stats.errors == 1
        assert not os.path.exists(path)  # dropped, not retried forever
        # a subsequent put repairs the entry
        cache.put("c" * 64, {"x": 2})
        assert cache.get("c" * 64) == {"x": 2}

    def test_lru_eviction_by_size(self, tmp_path):
        payload = {"blob": b"x" * 4096}
        entry_size = len(pickle.dumps(payload, pickle.HIGHEST_PROTOCOL))
        cache = SharedStageCache(str(tmp_path), max_bytes=3 * entry_size)
        keys = [f"{i:02d}" + "e" * 62 for i in range(5)]
        for key in keys:
            cache.put(key, payload)
        assert cache.stats.evictions >= 2
        assert cache.total_bytes() <= 3 * entry_size
        # the most recent entry always survives
        assert cache.get(keys[-1]) is not None

    def test_get_refreshes_lru_position(self, tmp_path):
        payload = {"blob": b"y" * 4096}
        entry_size = len(pickle.dumps(payload, pickle.HIGHEST_PROTOCOL))
        cache = SharedStageCache(str(tmp_path), max_bytes=2 * entry_size)
        a, b = "aa" + "f" * 62, "bb" + "f" * 62
        cache.put(a, payload)
        cache.put(b, payload)
        # make `a` the most recently used, then overflow: `b` must go
        path_a, path_b = cache._path(a), cache._path(b)
        os.utime(path_a, (os.path.getmtime(path_b) + 10,) * 2)
        cache.put("cc" + "f" * 62, payload)
        assert cache.get(a) is not None
        assert cache.get(b) is None

    def test_clear(self, tmp_path):
        cache = SharedStageCache(str(tmp_path))
        cache.put("d" * 64, {"x": 1})
        cache.clear()
        assert len(cache) == 0
        assert cache.get("d" * 64) is None

    def test_max_bytes_validated(self, tmp_path):
        with pytest.raises(ValueError):
            SharedStageCache(str(tmp_path), max_bytes=0)

    def test_from_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv(SHARED_CACHE_ENV, raising=False)
        assert shared_cache_from_env() is None
        monkeypatch.setenv(SHARED_CACHE_ENV, str(tmp_path))
        monkeypatch.setenv(SHARED_CACHE_MAX_BYTES_ENV, "12345")
        cache = shared_cache_from_env()
        assert cache is not None
        assert cache.directory == str(tmp_path)
        assert cache.max_bytes == 12345


class TestTwoTierStageCache:
    def test_memory_miss_falls_through_to_shared(self, tmp_path):
        shared = SharedStageCache(str(tmp_path))
        first = StageCache(shared=shared)
        first.put("k1", {"coreops": "artifact"})
        # a different in-memory cache over the same shared directory: the
        # in-memory miss is served by the shared tier
        second = StageCache(shared=SharedStageCache(str(tmp_path)))
        assert second.get("k1") == {"coreops": "artifact"}
        assert second.stats.hits == 1
        assert second.stats.shared_hits == 1
        # and the entry was promoted into the in-memory tier
        assert second.stats.shared_misses == 0
        second.shared = None
        assert second.get("k1") == {"coreops": "artifact"}

    def test_shared_miss_counted(self, tmp_path):
        cache = StageCache(shared=SharedStageCache(str(tmp_path)))
        assert cache.get("absent") is None
        assert cache.stats.misses == 1
        assert cache.stats.shared_misses == 1

    def test_no_shared_tier_behaves_as_before(self):
        cache = StageCache()
        assert cache.get("absent") is None
        cache.put("k", {"a": 1})
        assert cache.get("k") == {"a": 1}
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.shared_hits == 0

    def test_evictions_counted(self):
        cache = StageCache(max_entries=2)
        for i in range(5):
            cache.put(f"k{i}", {"v": i})
        assert cache.stats.evictions == 3
        assert len(cache) == 2

    def test_stats_snapshot_delta(self):
        cache = StageCache(max_entries=1)
        before = cache.stats.snapshot()
        cache.put("a", {})
        cache.put("b", {})  # evicts a
        cache.get("b")
        cache.get("a")  # miss
        delta = cache.stats.delta(before)
        assert delta == CacheStats(
            hits=1, misses=1, evictions=1, shared_hits=0, shared_misses=0
        )
        # the snapshot itself is unchanged by later activity
        assert before.lookups == 0

    def test_lookup_reports_tier(self, tmp_path):
        from repro.core.cache import (
            LOOKUP_MEMORY,
            LOOKUP_MISS,
            LOOKUP_SHARED,
            LOOKUP_SHARED_MISS,
        )
        from repro.core.shared_cache import SharedStageCache

        plain = StageCache()
        assert plain.lookup("k")[1] == LOOKUP_MISS
        plain.put("k", {"a": 1})
        assert plain.lookup("k")[1] == LOOKUP_MEMORY

        shared = SharedStageCache(str(tmp_path))
        StageCache(shared=shared).put("k2", {"b": 2})
        tiered = StageCache(shared=SharedStageCache(str(tmp_path)))
        assert tiered.lookup("absent")[1] == LOOKUP_SHARED_MISS
        assert tiered.lookup("k2")[1] == LOOKUP_SHARED
        assert tiered.lookup("k2")[1] == LOOKUP_MEMORY  # promoted

    def test_per_compile_stats_do_not_leak_across_concurrent_compiles(self):
        """The per-compile counters are tallied by the run itself, so a
        concurrent compile hammering the same cache can't inflate them."""
        import threading

        from repro.core.compiler import FPSACompiler
        from repro.models.zoo import build_model

        cache = StageCache()
        compiler = FPSACompiler(cache=cache)
        stop = threading.Event()

        def hammer():
            while not stop.is_set():
                cache.get("unrelated-key")  # global misses pile up

        thread = threading.Thread(target=hammer)
        thread.start()
        try:
            result = compiler.compile(build_model("MLP-500-100"))
        finally:
            stop.set()
            thread.join()
        stats = result.cache_stats
        # a cold compile consults the cache once per cacheable pass
        # (synthesis, mapping): exactly 2 misses, no contamination from
        # the hammering thread's lookups
        assert stats.misses == 2
        assert stats.hits == 0
        assert cache.stats.misses > 2  # the global counters did see them

    def test_contains_checks_both_tiers(self, tmp_path):
        shared = SharedStageCache(str(tmp_path))
        StageCache(shared=shared).put("k", {"a": 1})
        fresh = StageCache(shared=SharedStageCache(str(tmp_path)))
        assert "k" in fresh
        assert "absent" not in fresh
