"""Tests of the end-to-end compiler API."""

import pytest

import repro
from repro.core.compiler import FPSACompiler
from repro.models import build_lenet


class TestFPSACompiler:
    @pytest.fixture(scope="class")
    def lenet_deployment(self):
        compiler = FPSACompiler()
        return compiler.compile(build_lenet(), duplication_degree=4, detailed_schedule=True)

    def test_deployment_result_consistency(self, lenet_deployment):
        result = lenet_deployment
        assert result.model == "LeNet"
        assert result.duplication_degree == 4
        assert result.mapping.netlist.n_pe == result.mapping.allocation.total_pes
        assert result.performance.model == "LeNet"
        assert result.bounds.peak_density >= result.bounds.spatial_bound

    def test_pipeline_simulation_attached(self, lenet_deployment):
        assert lenet_deployment.pipeline is not None
        assert lenet_deployment.pipeline.throughput_samples_per_s > 0

    def test_summary_readable(self, lenet_deployment):
        text = lenet_deployment.summary()
        assert "LeNet" in text
        assert "throughput" in text
        assert "mm^2" in text

    def test_pe_budget_path(self):
        compiler = FPSACompiler()
        result = compiler.compile(build_lenet(), pe_budget=60)
        assert result.mapping.netlist.n_pe <= 60

    def test_pnr_path(self):
        compiler = FPSACompiler()
        result = compiler.compile(
            build_lenet(), duplication_degree=1, run_pnr=True, pnr_channel_width=24
        )
        assert result.pnr is not None
        assert result.pnr.routing.legal

    def test_energy_report(self, lenet_deployment):
        report = lenet_deployment.energy()
        assert report.total_pj > 0
        # the ReRAM PEs dominate the dynamic energy of a compute-bound CNN
        assert report.pe_pj > report.clb_pj
        efficiency = lenet_deployment.energy_efficiency_tops_per_w()
        assert 1.0 < efficiency < 1e4  # ReRAM PIM designs report O(10-1000) TOPS/W

    def test_top_level_deploy_helpers(self):
        result = repro.deploy_model("MLP-500-100", duplication_degree=2)
        assert result.model == "MLP-500-100"
        assert result.throughput_samples_per_s > 0
        assert repro.deploy(build_lenet()).model == "LeNet"

    def test_version_exposed(self):
        assert repro.__version__
