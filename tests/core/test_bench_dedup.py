"""The subgraph-dedup section of the benchmark harness."""

from __future__ import annotations

import json

import pytest

from repro.bench import (
    BenchReport,
    build_parser,
    compare_reports,
    format_dedup_section,
    run_dedup_bench,
    run_from_args,
)
from repro.errors import InvalidRequestError


def _dedup_section(**overrides) -> dict:
    section = {
        "models": ["VGG11", "VGG16"],
        "target": "VGG16",
        "seed": 0,
        "samples": 3,
        "baseline_synth_map_seconds": 0.040,
        "cold_synth_map_seconds": 0.026,
        "warm_synth_map_seconds": 0.022,
        "speedup": 1.8,
        "reduction": 0.45,
        "warm_dedup_hits": 56,
        "warm_dedup_misses": 6,
        "warm_hit_rate": 56 / 62,
        "summaries_identical": True,
        "fuzz": {
            "spec_id": "abc123",
            "repeat": 3,
            "cold_dedup_hits": 12,
            "cold_dedup_misses": 13,
            "cold_hit_rate": 12 / 25,
            "warm_dedup_hits": 25,
            "warm_dedup_misses": 0,
            "warm_hit_rate": 1.0,
        },
    }
    section.update(overrides)
    return section


class TestDedupSection:
    def test_report_roundtrip(self):
        report = BenchReport(created_at=1.0, dedup=_dedup_section())
        again = BenchReport.from_dict(json.loads(report.to_json()))
        assert again.dedup == report.dedup

    def test_reports_without_dedup_stay_compatible(self):
        report = BenchReport(created_at=1.0)
        data = report.to_dict()
        assert "dedup" not in data
        assert BenchReport.from_dict(data).dedup is None

    def test_format_is_human_readable(self):
        text = format_dedup_section(_dedup_section())
        assert "VGG11 -> VGG16" in text
        assert "90%" in text
        assert "yes" in text


class TestDedupRegressions:
    def test_clean_pass(self):
        current = BenchReport(dedup=_dedup_section())
        assert compare_reports(current, BenchReport()) == []

    def test_speedup_floor(self):
        current = BenchReport(dedup=_dedup_section(speedup=1.1))
        regressions = compare_reports(current, BenchReport())
        assert len(regressions) == 1
        assert "below the 1.30x floor" in regressions[0]
        assert compare_reports(current, BenchReport(), dedup_min_speedup=1.0) == []

    def test_hit_rate_floor(self):
        current = BenchReport(
            dedup=_dedup_section(warm_hit_rate=0.1, warm_dedup_hits=1,
                                 warm_dedup_misses=9)
        )
        regressions = compare_reports(current, BenchReport())
        assert any("hit rate" in r for r in regressions)
        assert compare_reports(current, BenchReport(), dedup_min_hit_rate=0.0) == []

    def test_divergent_summaries_flagged(self):
        current = BenchReport(dedup=_dedup_section(summaries_identical=False))
        regressions = compare_reports(current, BenchReport())
        assert any("differ from the dedup-off reference" in r for r in regressions)

    def test_missing_dedup_section_is_not_a_regression(self):
        assert compare_reports(BenchReport(), BenchReport(dedup=_dedup_section())) == []


class TestDedupBenchRun:
    def test_smoke(self):
        dedup = run_dedup_bench(samples=1)
        assert dedup["models"] == ["VGG11", "VGG16"]
        assert dedup["target"] == "VGG16"
        assert dedup["baseline_synth_map_seconds"] > 0
        assert dedup["warm_synth_map_seconds"] > 0
        assert dedup["warm_dedup_hits"] > 0
        assert dedup["warm_hit_rate"] > 0.5
        assert dedup["summaries_identical"] is True
        fuzz = dedup["fuzz"]
        assert fuzz["repeat"] >= 2
        # even the cold store serves the repeated blocks within one model
        assert fuzz["cold_dedup_hits"] > 0
        assert fuzz["warm_hit_rate"] == 1.0

    def test_needs_two_models(self):
        with pytest.raises(InvalidRequestError):
            run_dedup_bench(models=["VGG16"], samples=1)


class TestReportMerge:
    def test_dedup_run_preserves_other_sections(self, tmp_path, capsys):
        output = tmp_path / "BENCH.json"
        from repro.bench import BenchEntry

        existing = BenchReport(created_at=1.0, serve={"speedup": 5.0})
        existing.entries.append(
            BenchEntry(model="M", duplication_degree=1, channel_width=16, seed=0)
        )
        existing.save(str(output))
        args = build_parser().parse_args(
            ["--dedup", "--dedup-samples", "1", "--output", str(output)]
        )
        assert run_from_args(args) == 0
        merged = BenchReport.load(str(output))
        assert merged.dedup is not None
        assert [e.model for e in merged.entries] == ["M"]  # carried over
        assert merged.serve == {"speedup": 5.0}  # carried over

    def test_serve_and_dedup_are_mutually_exclusive(self, capsys):
        args = build_parser().parse_args(["--serve", "--dedup"])
        assert run_from_args(args) == 2
