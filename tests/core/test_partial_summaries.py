"""Graceful degradation of summaries on partial compiles.

A partial compile (an explicit ``passes`` list, or a multi-chip compile
whose netlists live on the shards) leaves some artifacts ``None``; both the
human-readable ``DeploymentResult.summary()``/``timings_table()`` and the
wire-level ``ResultSummary.from_result`` must render the artifacts that
*are* present and silently omit the rest — never assume ``performance``
exists because ``mapping`` does, or vice versa.
"""

from __future__ import annotations

import pytest

from repro.core.api import deploy_model
from repro.service.schemas import ResultSummary

#: pass lists covering every articulation point of the artifact lattice.
PARTIAL_PASS_LISTS = [
    ("synthesis",),
    ("synthesis", "mapping"),
    ("synthesis", "mapping", "perf"),
    ("synthesis", "mapping", "bounds"),
    ("synthesis", "mapping", "pnr"),
    ("synthesis", "mapping", "pnr", "bitstream"),
    ("synthesis", "partition"),
]


@pytest.mark.parametrize("passes", PARTIAL_PASS_LISTS, ids="+".join)
def test_summary_degrades_gracefully(passes):
    result = deploy_model("MLP-500-100", passes=passes, use_cache=False)
    text = result.summary()
    assert "deployment of 'MLP-500-100'" in text
    if "perf" not in passes:
        assert result.performance is None
        assert "throughput" not in text
    if "mapping" in passes:
        assert "PEs:" in text
    assert "(no pass timings recorded)" not in result.timings_table()


@pytest.mark.parametrize("passes", PARTIAL_PASS_LISTS, ids="+".join)
def test_result_summary_round_trips_partials(passes):
    result = deploy_model("MLP-500-100", passes=passes, use_cache=False)
    summary = ResultSummary.from_result(result)
    assert summary.model == "MLP-500-100"
    if "perf" not in passes:
        assert summary.performance is None
    if "mapping" not in passes:
        assert summary.blocks is None
        assert summary.energy is None
    again = ResultSummary.from_dict(summary.to_dict())
    assert again == summary


def test_multi_chip_summary_without_top_level_mapping():
    result = deploy_model(
        "CIFAR-VGG17", duplication_degree=16, num_chips=2, use_cache=False
    )
    assert result.mapping is None
    text = result.summary()
    assert "partition of" in text
    assert "summed over 2 chips" in text
    summary = ResultSummary.from_result(result)
    # blocks fall back to the shard totals; energy needs a netlist and is
    # omitted rather than assumed
    assert summary.blocks["n_pe"] == result.partition.total_pes
    assert summary.energy is None
    assert summary.duplication_degree == 16
