"""The deterministic fault-injection layer (:mod:`repro.faults`)."""

from __future__ import annotations

import json
import os

import pytest

from repro.errors import InvalidRequestError, TransientIOError
from repro.faults import (
    FAULT_PLAN_ENV,
    KIND_CORRUPT,
    SITE_SHARED_CACHE_GET,
    SITE_SHARED_CACHE_PUT,
    SITE_WORKER_COMPILE,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    active_injector,
    clear_installed_plan,
    fire,
    install_plan,
)


@pytest.fixture(autouse=True)
def _clean_fault_state(monkeypatch):
    monkeypatch.delenv(FAULT_PLAN_ENV, raising=False)
    clear_installed_plan()
    yield
    clear_installed_plan()


def io_spec(**overrides) -> FaultSpec:
    fields = dict(site=SITE_WORKER_COMPILE, kind="io_error")
    fields.update(overrides)
    return FaultSpec(**fields)


class TestSpecValidation:
    def test_round_trip(self):
        spec = FaultSpec(
            site=SITE_WORKER_COMPILE,
            kind="crash",
            match={"model": "LeNet", "attempt": 0},
            at=1,
            times=2,
            seconds=0.5,
        )
        assert FaultSpec.from_dict(spec.to_dict()) == spec

    def test_plan_json_round_trip(self):
        plan = FaultPlan(
            faults=(io_spec(), FaultSpec(site="s", kind="hang", seconds=0.2)),
            seed=7,
        )
        again = FaultPlan.from_json(plan.to_json())
        assert again == plan
        # sorted keys: the JSON is canonical, usable as a memo key
        assert plan.to_json() == again.to_json()

    @pytest.mark.parametrize(
        "overrides",
        [
            {"site": ""},
            {"kind": "explode"},
            {"at": -1},
            {"at": True},
            {"times": 0},
            {"seconds": -0.1},
        ],
    )
    def test_invalid_spec_rejected(self, overrides):
        with pytest.raises(InvalidRequestError):
            io_spec(**overrides)

    def test_unknown_fields_rejected(self):
        with pytest.raises(InvalidRequestError):
            FaultSpec.from_dict({"site": "s", "kind": "hang", "color": "red"})
        with pytest.raises(InvalidRequestError):
            FaultPlan.from_dict({"seed": 0, "faults": [], "extra": 1})

    def test_invalid_json_rejected(self):
        with pytest.raises(InvalidRequestError):
            FaultPlan.from_json("not json")


class TestInjector:
    def test_io_error_raises_transient_os_error(self):
        injector = FaultInjector(FaultPlan(faults=(io_spec(),)))
        with pytest.raises(TransientIOError) as excinfo:
            injector.fire(SITE_WORKER_COMPILE, model="LeNet")
        assert isinstance(excinfo.value, OSError)
        assert excinfo.value.details["site"] == SITE_WORKER_COMPILE
        assert injector.fired() == 1

    def test_match_is_subset_of_context(self):
        spec = io_spec(match={"model": "LeNet", "attempt": 0})
        injector = FaultInjector(FaultPlan(faults=(spec,)))
        # wrong model, wrong attempt, missing key: all pass through
        assert injector.fire(SITE_WORKER_COMPILE, model="MLP", attempt=0) is None
        assert injector.fire(SITE_WORKER_COMPILE, model="LeNet", attempt=1) is None
        assert injector.fire(SITE_WORKER_COMPILE, attempt=0) is None
        assert injector.fired() == 0
        with pytest.raises(TransientIOError):
            injector.fire(SITE_WORKER_COMPILE, model="LeNet", attempt=0)

    def test_at_skips_early_occurrences_and_times_bounds_firings(self):
        spec = io_spec(at=1, times=1)
        injector = FaultInjector(FaultPlan(faults=(spec,)))
        assert injector.fire(SITE_WORKER_COMPILE) is None  # occurrence 0
        with pytest.raises(TransientIOError):
            injector.fire(SITE_WORKER_COMPILE)  # occurrence 1: fires
        assert injector.fire(SITE_WORKER_COMPILE) is None  # exhausted
        assert injector.fired() == 1

    def test_corrupt_spec_is_returned_to_the_caller(self):
        spec = FaultSpec(site=SITE_SHARED_CACHE_PUT, kind=KIND_CORRUPT)
        injector = FaultInjector(FaultPlan(faults=(spec,)))
        assert injector.fire(SITE_SHARED_CACHE_PUT, key="k") is spec

    def test_hang_sleeps_and_returns_none(self):
        spec = FaultSpec(site="s", kind="hang", seconds=0.0)
        injector = FaultInjector(FaultPlan(faults=(spec,)))
        assert injector.fire("s") is None
        assert injector.fired() == 1

    def test_first_matching_spec_wins(self):
        corrupt = FaultSpec(site="s", kind=KIND_CORRUPT)
        other = FaultSpec(site="s", kind="hang", seconds=0.0)
        injector = FaultInjector(FaultPlan(faults=(corrupt, other)))
        assert injector.fire("s") is corrupt
        # the corrupt spec is exhausted; the hang fires next
        assert injector.fire("s") is None
        assert injector.fired() == 2


class TestActivation:
    def test_no_plan_means_no_op(self):
        assert active_injector() is None
        assert fire(SITE_WORKER_COMPILE, model="LeNet") is None

    def test_install_plan_from_json_string(self):
        plan = FaultPlan(faults=(io_spec(),))
        injector = install_plan(plan.to_json())
        assert active_injector() is injector
        with pytest.raises(TransientIOError):
            fire(SITE_WORKER_COMPILE)

    def test_reinstalling_the_same_plan_keeps_counters(self):
        plan = FaultPlan(faults=(io_spec(times=1),))
        injector = install_plan(plan)
        with pytest.raises(TransientIOError):
            injector.fire(SITE_WORKER_COMPILE)
        # same plan again: same injector, spec stays exhausted
        assert install_plan(FaultPlan.from_json(plan.to_json())) is injector
        assert fire(SITE_WORKER_COMPILE) is None
        # a different plan replaces it
        other = install_plan(FaultPlan(faults=(io_spec(times=2),)))
        assert other is not injector

    def test_env_inline_json(self, monkeypatch):
        plan = FaultPlan(faults=(io_spec(),))
        monkeypatch.setenv(FAULT_PLAN_ENV, plan.to_json())
        injector = active_injector()
        assert injector is not None
        assert injector.plan == plan
        # unchanged value: memoized injector; changed value: rebuilt
        assert active_injector() is injector
        monkeypatch.setenv(
            FAULT_PLAN_ENV, FaultPlan(faults=(io_spec(at=5),)).to_json()
        )
        assert active_injector() is not injector

    def test_env_file_path(self, tmp_path, monkeypatch):
        plan = FaultPlan(faults=(io_spec(),), seed=3)
        path = tmp_path / "plan.json"
        path.write_text(plan.to_json(), encoding="utf-8")
        monkeypatch.setenv(FAULT_PLAN_ENV, str(path))
        injector = active_injector()
        assert injector is not None and injector.plan == plan

    def test_installed_plan_takes_precedence_over_env(self, monkeypatch):
        monkeypatch.setenv(
            FAULT_PLAN_ENV, FaultPlan(faults=(io_spec(),)).to_json()
        )
        installed = install_plan(FaultPlan(faults=()))
        assert active_injector() is installed
        clear_installed_plan()
        assert active_injector() is not installed

    def test_unreadable_plan_file_is_a_typed_error(self):
        with pytest.raises(InvalidRequestError):
            FaultPlan.from_env_value(os.path.join("no", "such", "plan.json"))


class TestCacheDegradation:
    """Injected (and real) IO faults on the cache write/read paths must
    degrade to counted misses, never fail the compile."""

    def test_shared_cache_put_io_error_degrades(self, tmp_path):
        from repro.core.shared_cache import SharedStageCache

        install_plan(
            FaultPlan(
                faults=(
                    FaultSpec(site=SITE_SHARED_CACHE_PUT, kind="io_error"),
                )
            )
        )
        cache = SharedStageCache(str(tmp_path / "shared"))
        assert cache.put("a" * 16, {"x": 1}) is False  # injected failure
        assert cache.stats.errors == 1
        assert cache.put("a" * 16, {"x": 1}) is True  # spec exhausted
        assert cache.get("a" * 16) == {"x": 1}

    def test_shared_cache_get_io_error_is_a_counted_miss(self, tmp_path):
        from repro.core.shared_cache import SharedStageCache

        cache = SharedStageCache(str(tmp_path / "shared"))
        assert cache.put("b" * 16, {"x": 2}) is True
        install_plan(
            FaultPlan(
                faults=(
                    FaultSpec(site=SITE_SHARED_CACHE_GET, kind="io_error"),
                )
            )
        )
        assert cache.get("b" * 16) is None
        assert cache.stats.misses == 1 and cache.stats.errors == 1
        # the faulted entry was dropped; the next lookup is a clean miss
        clear_installed_plan()
        assert cache.get("b" * 16) is None

    def test_corrupt_put_is_tolerated_by_the_read_side(self, tmp_path):
        from repro.core.shared_cache import SharedStageCache

        install_plan(
            FaultPlan(
                faults=(
                    FaultSpec(site=SITE_SHARED_CACHE_PUT, kind=KIND_CORRUPT),
                )
            )
        )
        cache = SharedStageCache(str(tmp_path / "shared"))
        assert cache.put("c" * 16, {"x": 3}) is True  # garbage published
        clear_installed_plan()
        assert cache.get("c" * 16) is None  # unreadable -> dropped
        assert cache.stats.errors == 1

    def test_stage_cache_counts_failed_shared_writes(self, tmp_path):
        from repro.core.cache import CacheStats, StageCache
        from repro.core.shared_cache import SharedStageCache

        install_plan(
            FaultPlan(
                faults=(
                    FaultSpec(
                        site=SITE_SHARED_CACHE_PUT, kind="io_error", times=5
                    ),
                )
            )
        )
        cache = StageCache(shared=SharedStageCache(str(tmp_path / "shared")))
        stats = CacheStats()
        cache.put("d" * 16, {"x": 4}, stats=stats)
        assert cache.stats.write_errors == 1
        assert stats.write_errors == 1
        # the in-memory tier still holds the artifacts
        assert cache.get("d" * 16) == {"x": 4}

    def test_readonly_directory_degrades_like_an_injected_fault(self, tmp_path):
        from repro.core.shared_cache import SharedStageCache

        directory = tmp_path / "shared"
        cache = SharedStageCache(str(directory))
        os.chmod(directory, 0o500)
        try:
            if os.access(str(directory), os.W_OK):
                pytest.skip("running as a user the mode bits cannot stop")
            assert cache.put("e" * 16, {"x": 5}) is False
            assert cache.stats.errors == 1
        finally:
            os.chmod(directory, 0o700)

    def test_dedup_store_put_degrades_to_counted_write_error(self, tmp_path):
        from repro.core.dedup import SubgraphStore
        from repro.core.shared_cache import SharedStageCache
        from repro.faults import SITE_DEDUP_PUT

        install_plan(
            FaultPlan(
                faults=(FaultSpec(site=SITE_DEDUP_PUT, kind="io_error"),)
            )
        )
        store = SubgraphStore(shared=SharedStageCache(str(tmp_path / "dedup")))
        store.put("f" * 16, {"anything": 1})
        assert store.stats.write_errors == 1
        # the in-memory tier still serves the fragment
        assert store.get("f" * 16) is not None


class TestCompileThreading:
    def test_fault_plan_reaches_compile_options(self):
        plan_json = FaultPlan(faults=()).to_json()
        from repro.core.compiler import FPSACompiler
        from repro.models.zoo import build_model

        compiler = FPSACompiler()
        result = compiler.compile(
            build_model("MLP-500-100"), seed=0, fault_plan=plan_json
        )
        assert result is not None
        assert json.loads(active_injector().plan.to_json()) == json.loads(
            plan_json
        )
