"""The parallel-P&R engine speedup gate of the benchmark harness."""

from __future__ import annotations

from repro.bench import (
    PNR_SPEEDUP_MIN_BLOCKS,
    BenchEntry,
    BenchReport,
    _measure_engine_ratio,
    compare_reports,
    run_bench,
)


def _entry(serial=None, parallel=None, model="M", chips=1) -> BenchEntry:
    return BenchEntry(
        model=model,
        duplication_degree=1,
        channel_width=16,
        seed=0,
        num_chips=chips,
        serial_place_route_seconds=serial,
        parallel_place_route_seconds=parallel,
    )


class TestEngineSpeedupGate:
    def test_below_floor_is_a_regression(self):
        current = BenchReport(entries=[_entry(serial=4.0, parallel=2.0)])
        regressions = compare_reports(current, BenchReport(), pnr_min_speedup=3.0)
        assert any("parallel-engine" in r and "2.00x" in r for r in regressions)

    def test_at_or_above_floor_is_clean(self):
        current = BenchReport(entries=[_entry(serial=6.0, parallel=2.0)])
        assert compare_reports(current, BenchReport(), pnr_min_speedup=3.0) == []

    def test_aggregated_over_measured_entries(self):
        # 4x and 2.5x entries aggregate by total seconds, not by averaging
        current = BenchReport(
            entries=[
                _entry(serial=8.0, parallel=2.0, model="big"),
                _entry(serial=2.5, parallel=1.0, model="mid", chips=2),
            ]
        )
        # (8.0 + 2.5) / (2.0 + 1.0) = 3.5 -> clean at the 3.0 floor
        assert compare_reports(current, BenchReport(), pnr_min_speedup=3.0) == []
        regressions = compare_reports(current, BenchReport(), pnr_min_speedup=4.0)
        assert any("3.50x" in r for r in regressions)

    def test_gate_skipped_without_measurements(self):
        # pre-engine reports (and small-models-only runs) lack the
        # reference fields entirely: the gate must not fire
        current = BenchReport(entries=[_entry()])
        assert compare_reports(current, BenchReport(), pnr_min_speedup=100.0) == []

    def test_gate_reads_current_run_only(self):
        # the speedup is a same-run ratio: a slow baseline must not mask it
        baseline = BenchReport(entries=[_entry(serial=100.0, parallel=1.0)])
        current = BenchReport(entries=[_entry(serial=2.0, parallel=2.0)])
        regressions = compare_reports(current, baseline, pnr_min_speedup=3.0)
        assert any("parallel-engine" in r for r in regressions)


class TestReportCompatibility:
    def test_pre_engine_payload_parses(self):
        # a report written before the parallel engine has no pnr_jobs /
        # engine-reference fields; it must load with None defaults
        old = {
            "model": "LeNet",
            "duplication_degree": 1,
            "channel_width": 24,
            "seed": 0,
            "stage_seconds": {"pnr": 1.0},
            "quality": {"total_wirelength": 90.0},
        }
        entry = BenchEntry.from_dict(old)
        assert entry.pnr_jobs is None
        assert entry.serial_place_route_seconds is None
        assert entry.parallel_place_route_seconds is None
        assert entry.engine_speedup is None

    def test_engine_fields_round_trip(self):
        entry = _entry(serial=3.0, parallel=1.0)
        again = BenchEntry.from_dict(entry.to_dict())
        assert again.serial_place_route_seconds == 3.0
        assert again.parallel_place_route_seconds == 1.0
        assert again.engine_speedup == 3.0

    def test_pnr_jobs_round_trips_through_report(self):
        entry = BenchEntry(
            model="M", duplication_degree=1, channel_width=16, seed=0, pnr_jobs=4
        )
        report = BenchReport.from_dict(BenchReport(entries=[entry]).to_dict())
        assert report.entries[0].pnr_jobs == 4


class TestEngineReferenceMeasurement:
    def test_small_netlists_are_not_measured(self):
        # the bench zoo's MLP netlist is far below the size bar: the
        # entry's reference fields stay None and the gate skips it
        report = run_bench(
            models=["MLP-500-100"], channel_width=16, partition_chips=()
        )
        (entry,) = report.entries
        assert sum(entry.blocks.values()) < PNR_SPEEDUP_MIN_BLOCKS
        assert entry.serial_place_route_seconds is None
        assert entry.parallel_place_route_seconds is None

    def test_measure_ratio_size_bar(self):
        class FakeNetlist:
            def __init__(self, n):
                self.blocks = {f"b{i}": None for i in range(n)}

        assert _measure_engine_ratio(
            [FakeNetlist(PNR_SPEEDUP_MIN_BLOCKS - 1)], 16, 0, None
        ) == (None, None)
