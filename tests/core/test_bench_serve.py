"""The serving-runtime section of the benchmark harness."""

from __future__ import annotations

import json

from repro.bench import (
    BenchReport,
    build_parser,
    compare_reports,
    run_from_args,
    run_serve_bench,
)


def _serve_section(**overrides) -> dict:
    section = {
        "models": ["MLP-500-100"],
        "total_requests": 24,
        "unique_requests": 2,
        "copies": 3,
        "repeats": 4,
        "workers": 2,
        "baseline_seconds": 1.0,
        "baseline_rps": 24.0,
        "runtime_seconds": 0.2,
        "runtime_rps": 120.0,
        "speedup": 5.0,
        "p50_ms": 4.0,
        "p99_ms": 20.0,
        "shared_cache_hits": 10,
        "shared_cache_misses": 4,
        "shared_cache_hit_rate": 10 / 14,
        "submitted": 24,
        "coalesced": 16,
        "summaries_identical": True,
        "cold_batch_seconds": 0.1,
        "warm_batch_seconds": 0.03,
    }
    section.update(overrides)
    return section


class TestServeSection:
    def test_report_roundtrip(self):
        report = BenchReport(created_at=1.0, serve=_serve_section())
        again = BenchReport.from_dict(json.loads(report.to_json()))
        assert again.serve == report.serve

    def test_reports_without_serve_stay_compatible(self):
        report = BenchReport(created_at=1.0)
        data = report.to_dict()
        assert "serve" not in data
        assert BenchReport.from_dict(data).serve is None


class TestServeRegressions:
    def test_clean_pass(self):
        current = BenchReport(serve=_serve_section())
        baseline = BenchReport(serve=_serve_section())
        assert compare_reports(current, baseline) == []

    def test_speedup_floor(self):
        current = BenchReport(serve=_serve_section(speedup=2.4))
        baseline = BenchReport(serve=_serve_section())
        regressions = compare_reports(current, baseline)
        assert len(regressions) == 1
        assert "below the 3.0x floor" in regressions[0]
        # the floor is configurable
        assert compare_reports(current, baseline, serve_min_speedup=2.0) == []

    def test_divergent_summaries_flagged(self):
        current = BenchReport(serve=_serve_section(summaries_identical=False))
        regressions = compare_reports(current, BenchReport())
        assert any("differ from the fresh-pool baseline" in r for r in regressions)

    def test_missing_serve_section_is_not_a_regression(self):
        assert compare_reports(BenchReport(), BenchReport(serve=_serve_section())) == []


class TestServeBenchRun:
    def test_smoke(self):
        # minimal real run: 2 batches of 2 unique requests, 1 worker
        serve = run_serve_bench(
            models=["MLP-500-100"],
            duplications=(1, 2),
            repeats=2,
            copies=2,
            workers=1,
        )
        assert serve["total_requests"] == 2 * 2 * 2
        assert serve["unique_requests"] == 2
        assert serve["baseline_seconds"] > 0
        assert serve["runtime_seconds"] > 0
        assert serve["speedup"] > 0
        assert serve["summaries_identical"] is True
        assert serve["submitted"] == serve["total_requests"]
        assert 0.0 <= serve["shared_cache_hit_rate"] <= 1.0

    def test_repeats_validated(self):
        import pytest

        from repro.errors import InvalidRequestError

        with pytest.raises(InvalidRequestError):
            run_serve_bench(models=["MLP-500-100"], repeats=1)


class TestReportMerge:
    def test_serve_run_preserves_pnr_entries(self, tmp_path, capsys):
        output = tmp_path / "BENCH.json"
        existing = BenchReport(created_at=1.0)
        from repro.bench import BenchEntry

        existing.entries.append(
            BenchEntry(model="M", duplication_degree=1, channel_width=16, seed=0)
        )
        existing.save(str(output))
        args = build_parser().parse_args(
            [
                "--serve",
                "--serve-models", "MLP-500-100",
                "--serve-repeats", "2",
                "--serve-copies", "1",
                "--serve-workers", "1",
                "--output", str(output),
            ]
        )
        assert run_from_args(args) == 0
        merged = BenchReport.load(str(output))
        assert merged.serve is not None
        assert [e.model for e in merged.entries] == ["M"]  # carried over

    def test_pnr_run_preserves_serve_section(self, tmp_path, capsys):
        output = tmp_path / "BENCH.json"
        BenchReport(created_at=1.0, serve=_serve_section()).save(str(output))
        args = build_parser().parse_args(
            [
                "--models", "mlp",
                "--partition-chips", "",
                "--output", str(output),
            ]
        )
        assert run_from_args(args) == 0
        merged = BenchReport.load(str(output))
        assert merged.serve == _serve_section()  # carried over
        assert merged.entries  # freshly measured
