"""Tests of the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_deploy_arguments(self):
        args = build_parser().parse_args(
            ["deploy", "LeNet", "--duplication", "8", "--detailed"]
        )
        assert args.model == "LeNet"
        assert args.duplication == 8
        assert args.detailed is True

    def test_unknown_model_parses(self):
        # unknown models are not an argparse error: they flow through the
        # service layer and come back as a typed unknown_model ErrorPayload
        args = build_parser().parse_args(["deploy", "NotAModel"])
        assert args.model == "NotAModel"

    def test_fuzz_arguments(self):
        args = build_parser().parse_args(
            ["fuzz", "--models", "5", "--seed", "7", "--size-class", "near",
             "--shrink", "--json", "report.json"]
        )
        assert args.models == 5
        assert args.seed == 7
        assert args.size_class == "near"
        assert args.shrink is True
        assert args.json == "report.json"

    def test_pipeline_flags(self):
        args = build_parser().parse_args(
            ["deploy", "LeNet", "--passes", "synthesis,mapping", "--no-cache", "--explain"]
        )
        assert args.passes == ["synthesis", "mapping"]
        assert args.no_cache is True
        assert args.explain is True

    def test_sweep_arguments(self):
        args = build_parser().parse_args(
            ["sweep", "LeNet", "--duplication", "1", "4", "--jobs", "2"]
        )
        assert args.duplication == [1, 4]
        assert args.jobs == 2


class TestCommands:
    def test_models_command(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "VGG16" in out
        assert "ResNet152" in out

    def test_deploy_command(self, capsys):
        assert main(["deploy", "MLP-500-100", "--duplication", "2"]) == 0
        out = capsys.readouterr().out
        assert "MLP-500-100" in out
        assert "throughput" in out

    def test_deploy_with_bitstream_to_stdout(self, capsys):
        assert main(["deploy", "MLP-500-100", "--bitstream", "-"]) == 0
        out = capsys.readouterr().out
        payload = out[out.index("{"):]
        data = json.loads(payload)
        assert data["model"] == "MLP-500-100"

    def test_deploy_with_bitstream_to_file(self, tmp_path, capsys):
        target = tmp_path / "config.json"
        assert main(["deploy", "LeNet", "--bitstream", str(target)]) == 0
        data = json.loads(target.read_text())
        assert data["model"] == "LeNet"
        assert data["total_configuration_bits"] > 0

    def test_experiments_command_selection(self, capsys):
        assert main(["experiments", "table2"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out

    def test_deploy_with_explain_prints_timings(self, capsys):
        assert main(["deploy", "LeNet", "--explain", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "synthesis" in out
        assert "wall ms" in out

    def test_deploy_with_pass_subset(self, capsys):
        assert main(["deploy", "LeNet", "--passes", "synthesis,mapping"]) == 0
        out = capsys.readouterr().out
        assert "PEs:" in out
        assert "throughput" not in out

    def test_passes_command(self, capsys):
        assert main(["passes", "--model", "LeNet"]) == 0
        out = capsys.readouterr().out
        assert "registered passes:" in out
        for name in ("synthesis", "mapping", "perf", "bounds", "pnr"):
            assert name in out

    def test_sweep_command(self, capsys):
        assert main(["sweep", "LeNet", "--duplication", "1", "2", "--jobs", "1"]) == 0
        out = capsys.readouterr().out
        assert "duplication" in out
        assert "samples/s" in out


class TestServiceCommands:
    def test_deploy_json_output(self, capsys):
        assert main(["deploy", "MLP-500-100", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["status"] == "ok"
        assert data["request"]["model"] == "MLP-500-100"
        assert data["summary"]["performance"]["throughput_samples_per_s"] > 0
        assert data["timings"]["cache_misses"] >= 0

    def test_deploy_failure_is_structured(self, capsys):
        # --json emits the same CompileResponse shape on failure as on success
        assert main(["deploy", "MLP-500-100", "--pe-budget", "1", "--json"]) == 1
        data = json.loads(capsys.readouterr().out)
        assert data["status"] == "error"
        assert data["error"]["code"] == "capacity_error"
        assert data["request"]["model"] == "MLP-500-100"

    def test_deploy_explain_shows_cache_counters(self, capsys):
        assert main(["deploy", "MLP-500-100", "--explain"]) == 0
        out = capsys.readouterr().out
        assert "stage cache:" in out
        assert "hit(s)" in out

    def test_deploy_persists_to_store(self, tmp_path, capsys):
        store_dir = tmp_path / "runs"
        assert main(["deploy", "MLP-500-100", "--store", str(store_dir)]) == 0
        capsys.readouterr()
        assert main(["runs", "--store", str(store_dir)]) == 0
        out = capsys.readouterr().out
        assert "MLP-500-100" in out
        assert "ok" in out

    def test_sweep_json_output(self, capsys):
        assert main(["sweep", "MLP-500-100", "--duplication", "1", "2", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert len(data) == 2
        assert [d["request"]["duplication_degree"] for d in data] == [1, 2]

    def test_serve_batch_generated_requests(self, capsys):
        assert main([
            "serve-batch", "--model", "MLP-500-100",
            "--duplication", "1", "2", "--jobs", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "served 2 request(s)" in out

    def test_serve_batch_from_file(self, tmp_path, capsys):
        requests_file = tmp_path / "requests.json"
        requests_file.write_text(json.dumps([
            {"model": "MLP-500-100"},
            {"model": "MLP-500-100", "duplication_degree": 2},
        ]))
        assert main(["serve-batch", str(requests_file), "--jobs", "1", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert [d["status"] for d in data] == ["ok", "ok"]

    def test_serve_batch_reports_failures(self, tmp_path, capsys):
        requests_file = tmp_path / "requests.json"
        requests_file.write_text(json.dumps([
            {"model": "MLP-500-100"},
            {"model": "MLP-500-100", "pe_budget": 1},
        ]))
        assert main(["serve-batch", str(requests_file), "--jobs", "1"]) == 1
        out = capsys.readouterr().out
        assert "capacity_error" in out

    def test_serve_batch_rejects_non_object_entries(self, tmp_path, capsys):
        requests_file = tmp_path / "requests.json"
        requests_file.write_text("[1, 2]")
        assert main(["serve-batch", str(requests_file)]) == 2
        assert "must hold a CompileRequest" in capsys.readouterr().err

    def test_serve_batch_without_input_rejected(self, capsys):
        assert main(["serve-batch"]) == 2
        err = capsys.readouterr().err
        assert "serve-batch needs" in err

    def test_runs_show_round_trip(self, tmp_path, capsys):
        store_dir = tmp_path / "runs"
        assert main([
            "serve-batch", "--model", "MLP-500-100", "--duplication", "1",
            "--jobs", "1", "--store", str(store_dir),
        ]) == 0
        capsys.readouterr()
        assert main(["runs", "--store", str(store_dir), "--json"]) == 0
        records = json.loads(capsys.readouterr().out)
        assert len(records) == 1
        run_id = records[0]["run_id"]
        assert main(["runs", "--store", str(store_dir), "--show", run_id, "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["request"]["model"] == "MLP-500-100"
        assert data["status"] == "ok"

    def test_jobs_command_lifecycle(self, capsys):
        assert main([
            "jobs", "--model", "MLP-500-100", "--duplication", "1", "2",
            "--jobs", "2", "--json",
        ]) == 0
        data = json.loads(capsys.readouterr().out)
        assert len(data) == 2
        assert all(entry["state"] == "done" for entry in data)
        assert all(entry["observed_states"][-1] == "done" for entry in data)

    def test_models_json(self, capsys):
        assert main(["models", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert "VGG16" in data
        assert data["LeNet"]["dataset"] == "MNIST"

    def test_passes_json(self, capsys):
        assert main(["passes", "--model", "MLP-500-100", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert "synthesis" in data["registered_passes"]
        assert data["cache_hits"] + data["cache_misses"] == len(data["timings"])
