"""Tests of the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_deploy_arguments(self):
        args = build_parser().parse_args(
            ["deploy", "LeNet", "--duplication", "8", "--detailed"]
        )
        assert args.model == "LeNet"
        assert args.duplication == 8
        assert args.detailed is True

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["deploy", "NotAModel"])


class TestCommands:
    def test_models_command(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "VGG16" in out
        assert "ResNet152" in out

    def test_deploy_command(self, capsys):
        assert main(["deploy", "MLP-500-100", "--duplication", "2"]) == 0
        out = capsys.readouterr().out
        assert "MLP-500-100" in out
        assert "throughput" in out

    def test_deploy_with_bitstream_to_stdout(self, capsys):
        assert main(["deploy", "MLP-500-100", "--bitstream", "-"]) == 0
        out = capsys.readouterr().out
        payload = out[out.index("{"):]
        data = json.loads(payload)
        assert data["model"] == "MLP-500-100"

    def test_deploy_with_bitstream_to_file(self, tmp_path, capsys):
        target = tmp_path / "config.json"
        assert main(["deploy", "LeNet", "--bitstream", str(target)]) == 0
        data = json.loads(target.read_text())
        assert data["model"] == "LeNet"
        assert data["total_configuration_bits"] > 0

    def test_experiments_command_selection(self, capsys):
        assert main(["experiments", "table2"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
