"""Tests of the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_deploy_arguments(self):
        args = build_parser().parse_args(
            ["deploy", "LeNet", "--duplication", "8", "--detailed"]
        )
        assert args.model == "LeNet"
        assert args.duplication == 8
        assert args.detailed is True

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["deploy", "NotAModel"])

    def test_pipeline_flags(self):
        args = build_parser().parse_args(
            ["deploy", "LeNet", "--passes", "synthesis,mapping", "--no-cache", "--explain"]
        )
        assert args.passes == ["synthesis", "mapping"]
        assert args.no_cache is True
        assert args.explain is True

    def test_sweep_arguments(self):
        args = build_parser().parse_args(
            ["sweep", "LeNet", "--duplication", "1", "4", "--jobs", "2"]
        )
        assert args.duplication == [1, 4]
        assert args.jobs == 2


class TestCommands:
    def test_models_command(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "VGG16" in out
        assert "ResNet152" in out

    def test_deploy_command(self, capsys):
        assert main(["deploy", "MLP-500-100", "--duplication", "2"]) == 0
        out = capsys.readouterr().out
        assert "MLP-500-100" in out
        assert "throughput" in out

    def test_deploy_with_bitstream_to_stdout(self, capsys):
        assert main(["deploy", "MLP-500-100", "--bitstream", "-"]) == 0
        out = capsys.readouterr().out
        payload = out[out.index("{"):]
        data = json.loads(payload)
        assert data["model"] == "MLP-500-100"

    def test_deploy_with_bitstream_to_file(self, tmp_path, capsys):
        target = tmp_path / "config.json"
        assert main(["deploy", "LeNet", "--bitstream", str(target)]) == 0
        data = json.loads(target.read_text())
        assert data["model"] == "LeNet"
        assert data["total_configuration_bits"] > 0

    def test_experiments_command_selection(self, capsys):
        assert main(["experiments", "table2"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out

    def test_deploy_with_explain_prints_timings(self, capsys):
        assert main(["deploy", "LeNet", "--explain", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "synthesis" in out
        assert "wall ms" in out

    def test_deploy_with_pass_subset(self, capsys):
        assert main(["deploy", "LeNet", "--passes", "synthesis,mapping"]) == 0
        out = capsys.readouterr().out
        assert "PEs:" in out
        assert "throughput" not in out

    def test_passes_command(self, capsys):
        assert main(["passes", "--model", "LeNet"]) == 0
        out = capsys.readouterr().out
        assert "registered passes:" in out
        for name in ("synthesis", "mapping", "perf", "bounds", "pnr"):
            assert name in out

    def test_sweep_command(self, capsys):
        assert main(["sweep", "LeNet", "--duplication", "1", "2", "--jobs", "1"]) == 0
        out = capsys.readouterr().out
        assert "duplication" in out
        assert "samples/s" in out
