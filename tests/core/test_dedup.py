"""Tests of the subgraph dedup cache: canonical hashing, the store, and
the bit-identity contract of splice-on-hit compiles."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.cache import CacheStats, StageCache
from repro.core.compiler import FPSACompiler
from repro.core.dedup import (
    DEDUP_STORE_ENV,
    SubgraphStore,
    clear_default_dedup_store,
    default_dedup_store,
    graph_digest,
    group_digest,
    subgraph_digests,
)
from repro.core.shared_cache import SharedStageCache
from repro.errors import InvalidRequestError
from repro.fuzz.oracle import strip_seconds
from repro.models.zoo import build_model
from repro.service.schemas import ResultSummary
from repro.synthesizer.coreop import (
    GRAPH_INPUT,
    GRAPH_OUTPUT,
    CoreOpGraph,
    WeightGroup,
)


# ---------------------------------------------------------------------------
# graph construction helpers + hypothesis strategies
# ---------------------------------------------------------------------------

_group_body = st.tuples(
    st.sampled_from(("matmul", "reduce", "pool_max", "add")),
    st.integers(min_value=1, max_value=512),   # rows
    st.integers(min_value=1, max_value=512),   # cols
    st.integers(min_value=1, max_value=64),    # reuse
    st.sampled_from((1.0, 0.5, 0.25)),         # density
    st.integers(min_value=0, max_value=10_000),  # macs_per_instance
)


@st.composite
def _graph_specs(draw):
    """A random DAG spec: group bodies plus forward edges (i < j)."""
    n = draw(st.integers(min_value=1, max_value=6))
    bodies = [draw(_group_body) for _ in range(n)]
    edges = []
    for j in range(1, n):
        for i in range(j):
            if draw(st.booleans()):
                edges.append((i, j, draw(st.integers(min_value=0, max_value=64))))
    # boundary edges keep the graph shaped like real synthesizer output
    edges.append((-1, 0, draw(st.integers(min_value=1, max_value=64))))
    edges.append((n - 1, -2, draw(st.integers(min_value=1, max_value=64))))
    return bodies, edges


def _build(bodies, edges, names=None, group_order=None, edge_order=None):
    """Materialize a graph spec, optionally renaming groups and permuting
    the insertion order of groups and edges."""
    n = len(bodies)
    names = names or [f"layer{i}/op" for i in range(n)]
    graph = CoreOpGraph("m")
    for i in group_order or range(n):
        kind, rows, cols, reuse, density, macs = bodies[i]
        graph.add_group(
            WeightGroup(
                name=names[i],
                source=names[i].split("/")[0],
                kind=kind,
                rows=rows,
                cols=cols,
                reuse=reuse,
                density=density,
                macs_per_instance=macs,
            )
        )
    def endpoint(index):
        if index == -1:
            return GRAPH_INPUT
        if index == -2:
            return GRAPH_OUTPUT
        return names[index]
    ordered = [edges[k] for k in (edge_order or range(len(edges)))]
    for src, dst, values in ordered:
        graph.add_edge(endpoint(src), endpoint(dst), values)
    return graph


class TestCanonicalHashing:
    @given(_graph_specs())
    def test_digest_invariant_under_renaming(self, spec):
        bodies, edges = spec
        a = _build(bodies, edges)
        b = _build(bodies, edges, names=[f"zz{i}/other" for i in range(len(bodies))])
        assert graph_digest(a) == graph_digest(b)
        # per-group cone digests line up pairwise too
        da, db = subgraph_digests(a), subgraph_digests(b)
        assert sorted(da.values()) == sorted(db.values())

    @given(_graph_specs(), st.randoms(use_true_random=False))
    def test_digest_invariant_under_insertion_order(self, spec, rng):
        bodies, edges = spec
        a = _build(bodies, edges)
        group_order = list(range(len(bodies)))
        edge_order = list(range(len(edges)))
        rng.shuffle(group_order)
        rng.shuffle(edge_order)
        b = _build(bodies, edges, group_order=group_order, edge_order=edge_order)
        assert graph_digest(a) == graph_digest(b)

    @given(_graph_specs(), st.integers(min_value=0, max_value=5))
    def test_distinct_structure_changes_the_digest(self, spec, which):
        bodies, edges = spec
        index = which % len(bodies)
        kind, rows, cols, reuse, density, macs = bodies[index]
        mutated = list(bodies)
        mutated[index] = (kind, rows + 1, cols, reuse, density, macs)
        assert graph_digest(_build(bodies, edges)) != graph_digest(
            _build(mutated, edges)
        )

    def test_group_digest_ignores_name_and_source(self):
        a = WeightGroup("a/x", "a", "matmul", 8, 8, 2)
        b = WeightGroup("b/y", "b", "matmul", 8, 8, 2)
        c = WeightGroup("a/x", "a", "matmul", 8, 9, 2)
        assert group_digest(a) == group_digest(b)
        assert group_digest(a) != group_digest(c)

    def test_cyclic_graph_gets_deterministic_fallback_digests(self):
        graph = CoreOpGraph("cyclic")
        for name in ("a/x", "b/x"):
            graph.add_group(WeightGroup(name, name[0], "matmul", 4, 4, 1))
        graph.add_edge("a/x", "b/x", 1)
        graph.add_edge("b/x", "a/x", 1)
        digests = subgraph_digests(graph)
        assert set(digests) == {"a/x", "b/x"}
        assert graph_digest(graph) == graph_digest(graph)


# ---------------------------------------------------------------------------
# the store
# ---------------------------------------------------------------------------


class TestSubgraphStore:
    def test_put_get_and_counters(self):
        store = SubgraphStore()
        assert store.get("k") is None
        store.put("k", {"v": 1})
        assert store.get("k") == {"v": 1}
        assert (store.stats.hits, store.stats.misses, store.stats.puts) == (1, 1, 1)
        assert "k" in store and "absent" not in store

    def test_lru_eviction_bounds_the_memory_tier(self):
        store = SubgraphStore(max_entries=2)
        for key in ("a", "b", "c"):
            store.put(key, key)
        assert len(store) == 2
        assert store.get("a") is None  # evicted first
        assert store.get("c") == "c"

    def test_bad_max_entries_rejected(self):
        with pytest.raises(InvalidRequestError):
            SubgraphStore(max_entries=0)

    def test_invalid_entry_dropped_and_counted(self):
        store = SubgraphStore()
        store.put("k", "poison")
        assert store.get("k", validate=lambda v: False) is None
        assert store.stats.errors == 1
        assert store.stats.misses == 1
        assert len(store) == 0
        # the entry is gone for good, not just skipped once
        assert store.get("k") is None

    def test_validator_crash_counts_as_invalid(self):
        store = SubgraphStore()
        store.put("k", "poison")

        def explode(value):
            raise RuntimeError("boom")

        assert store.get("k", validate=explode) is None
        assert store.stats.errors == 1

    def test_disk_tier_round_trip(self, tmp_path):
        directory = str(tmp_path / "store")
        writer = SubgraphStore(shared=SharedStageCache(directory, verify=False))
        writer.put("k", {"fragment-data": 7})
        reader = SubgraphStore(shared=SharedStageCache(directory, verify=False))
        assert reader.get("k") == {"fragment-data": 7}
        assert reader.stats.hits == 1

    def test_poisoned_disk_entry_dropped_from_both_tiers(self, tmp_path):
        directory = str(tmp_path / "store")
        shared = SharedStageCache(directory, verify=False)
        shared.put("k", {"fragment": "poison"})
        store = SubgraphStore(shared=SharedStageCache(directory, verify=False))
        assert store.get("k", validate=lambda v: v != "poison") is None
        assert store.stats.errors == 1
        # dropped from disk too: a fresh store over the directory misses
        fresh = SubgraphStore(shared=SharedStageCache(directory, verify=False))
        assert fresh.get("k") is None

    def test_clear_resets_memory_and_stats_only(self, tmp_path):
        directory = str(tmp_path / "store")
        store = SubgraphStore(shared=SharedStageCache(directory, verify=False))
        store.put("k", 1)
        store.clear()
        assert len(store) == 0
        assert store.stats.puts == 0
        # the disk tier survives for peers
        assert store.get("k") == 1


class TestDefaultStore:
    def test_env_variable_attaches_the_disk_tier(self, tmp_path, monkeypatch):
        monkeypatch.setenv(DEDUP_STORE_ENV, str(tmp_path / "dedup"))
        clear_default_dedup_store()
        try:
            store = default_dedup_store()
            assert store.shared is not None
            assert default_dedup_store() is store  # process-wide singleton
        finally:
            clear_default_dedup_store()

    def test_unset_env_means_memory_only(self, monkeypatch):
        monkeypatch.delenv(DEDUP_STORE_ENV, raising=False)
        clear_default_dedup_store()
        try:
            assert default_dedup_store().shared is None
        finally:
            clear_default_dedup_store()


# ---------------------------------------------------------------------------
# bit-identity of spliced compiles
# ---------------------------------------------------------------------------


def _summary(result, compiler):
    return strip_seconds(ResultSummary.from_result(result, compiler.config).to_dict())


def _compile(model_graph, store=None, dedup=False, seed=0):
    compiler = FPSACompiler(cache=StageCache(), dedup_store=store)
    result = compiler.compile(model_graph, seed=seed, verify=True, dedup=dedup)
    return result, _summary(result, compiler)


class TestBitIdentity:
    def test_cold_and_warm_splice_match_dedup_off(self):
        graph = build_model("LeNet")
        _, reference = _compile(graph)
        store = SubgraphStore()
        cold_result, cold_summary = _compile(graph, store=store, dedup=True)
        warm_result, warm_summary = _compile(graph, store=store, dedup=True)
        assert cold_summary == reference
        assert warm_summary == reference
        assert warm_result.cache_stats.dedup_hits > 0
        # counters surface on cache_stats, never on the summary itself
        assert "dedup" not in str(sorted(reference))

    def test_cross_model_store_reuse_stays_bit_identical(self):
        store = SubgraphStore()
        vgg11 = build_model("VGG11")
        vgg16 = build_model("VGG16")
        _, reference16 = _compile(vgg16)
        _, reference11 = _compile(vgg11)
        _, warm11 = _compile(vgg11, store=store, dedup=True)
        warm_result, warm16 = _compile(vgg16, store=store, dedup=True)
        assert warm11 == reference11
        assert warm16 == reference16
        stats = warm_result.cache_stats
        assert stats.dedup_hits > 0
        assert stats.dedup_hits / (stats.dedup_hits + stats.dedup_misses) > 0.5

    def test_poisoned_store_degrades_to_miss_not_breakage(self):
        graph = build_model("LeNet")
        _, reference = _compile(graph)
        store = SubgraphStore()
        _compile(graph, store=store, dedup=True)  # cold fill
        # poison every fragment in place: wrong shapes for both splice sides
        with store._lock:
            for key in list(store._entries):
                store._entries[key] = ("poison",)
        result, summary = _compile(graph, store=store, dedup=True)
        assert summary == reference
        assert result.cache_stats.dedup_hits == 0
        assert store.stats.errors > 0

    def test_fold_creates_cache_stats_counters(self):
        graph = build_model("MLP-500-100")
        store = SubgraphStore()
        result, _ = _compile(graph, store=store, dedup=True)
        stats = result.cache_stats
        assert isinstance(stats, CacheStats)
        assert stats.dedup_lookups == stats.dedup_hits + stats.dedup_misses
        assert stats.dedup_lookups > 0

    def test_dedup_off_records_no_dedup_lookups(self):
        result, _ = _compile(build_model("MLP-500-100"))
        stats = result.cache_stats
        assert stats is None or stats.dedup_lookups == 0


class TestMappingReplay:
    def _map(self, coreops, config, store):
        from repro.core.dedup import DedupStats
        from repro.mapper.replay import map_with_dedup

        stats = DedupStats()
        result = map_with_dedup(coreops, config, store, stats)
        return result, stats

    def test_replay_matches_legacy_mapper(self, lenet_coreops, config):
        from repro.mapper.mapper import SpatialTemporalMapper

        legacy = SpatialTemporalMapper(config).map(lenet_coreops)
        store = SubgraphStore()
        cold, _ = self._map(lenet_coreops, config, store)
        warm, warm_stats = self._map(lenet_coreops, config, store)
        for result in (cold, warm):
            assert result.allocation == legacy.allocation
            assert result.netlist.n_pe == legacy.netlist.n_pe
            assert result.netlist.n_smb == legacy.netlist.n_smb
            assert result.netlist.n_clb == legacy.netlist.n_clb
        assert warm_stats.hits == len(lenet_coreops.groups())

    def test_plausible_but_inconsistent_fragments_are_dropped(
        self, lenet_coreops, config
    ):
        store = SubgraphStore()
        reference, _ = self._map(lenet_coreops, config, store)
        # shape-valid poison: right tuple form, impossible tile count and
        # wrong duplication — passes _valid_fragment, caught by the
        # consistency check, dropped, recomputed as a miss
        with store._lock:
            for key in list(store._entries):
                store._entries[key] = (10**9, 10**9)
        poisoned, stats = self._map(lenet_coreops, config, store)
        assert stats.hits == 0
        assert stats.errors == len(lenet_coreops.groups())
        assert poisoned.allocation == reference.allocation
