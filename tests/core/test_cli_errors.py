"""End-to-end CLI error paths: every failure mode must exit nonzero and
surface a typed ErrorPayload (code + message), never a bare traceback or
an argparse usage error."""

import json

import pytest

from repro.cli import main


class TestUnknownModel:
    def test_deploy_unknown_model(self, capsys):
        assert main(["deploy", "NotAModel"]) == 1
        err = capsys.readouterr().err
        assert "[unknown_model]" in err
        assert "NotAModel" in err

    def test_deploy_unknown_model_json_payload(self, capsys):
        assert main(["deploy", "NotAModel", "--json"]) == 1
        data = json.loads(capsys.readouterr().out)
        assert data["status"] == "error"
        assert data["error"]["code"] == "unknown_model"

    def test_sweep_unknown_model(self, capsys):
        assert main(["sweep", "NotAModel", "--duplication", "1", "--json"]) == 1
        responses = json.loads(capsys.readouterr().out)
        assert all(r["error"]["code"] == "unknown_model" for r in responses)


class TestOverCapacity:
    def test_deploy_over_capacity_on_one_chip(self, capsys):
        assert main(["deploy", "VGG16", "--chips", "1", "--json"]) == 1
        data = json.loads(capsys.readouterr().out)
        assert data["status"] == "error"
        assert data["error"]["code"] == "capacity_error"

    def test_deploy_over_capacity_human_output(self, capsys):
        assert main(["deploy", "VGG16", "--chips", "1"]) == 1
        assert "[capacity_error]" in capsys.readouterr().err


class TestBadDirectories:
    def test_deploy_bad_store_dir(self, capsys, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("not a directory")
        code = main(["deploy", "LeNet", "--store", str(blocker / "sub")])
        assert code == 2
        assert "[invalid_request]" in capsys.readouterr().err

    def test_runs_bad_store_dir(self, capsys, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("not a directory")
        assert main(["runs", "--store", str(blocker / "sub")]) == 2
        assert "[invalid_request]" in capsys.readouterr().err

    def test_fuzz_bad_json_path_fails_before_the_campaign(self, capsys, tmp_path):
        target = tmp_path / "missing" / "report.json"
        code = main(["fuzz", "--models", "1", "--json", str(target)])
        assert code == 2
        captured = capsys.readouterr()
        assert "[invalid_request]" in captured.err
        # the campaign never started: failing late would waste the full run
        assert "fuzz campaign" not in captured.out


class TestFuzzCommand:
    def test_fuzz_smoke_writes_a_report(self, capsys, tmp_path):
        report_path = tmp_path / "report.json"
        code = main([
            "fuzz", "--models", "2", "--seed", "0", "--json", str(report_path),
        ])
        assert code == 0
        report = json.loads(report_path.read_text(encoding="utf-8"))
        assert report["ok"] is True
        assert report["seed"] == 0
        assert len(report["specs"]) == 2

    def test_fuzz_report_to_stdout(self, capsys):
        assert main(["fuzz", "--models", "1", "--seed", "3", "--json", "-"]) == 0
        captured = capsys.readouterr()
        report = json.loads(captured.out)
        assert report["ok"] is True
        # progress went to stderr, keeping stdout parseable
        assert "fuzz campaign" in captured.err

    def test_fuzz_seed_defaults_from_profile(self, capsys, monkeypatch):
        monkeypatch.setenv("HYPOTHESIS_PROFILE", "ci")
        assert main(["fuzz", "--models", "1", "--json", "-"]) == 0
        assert json.loads(capsys.readouterr().out)["seed"] == 0
