"""Tests of the deploy/deploy_many convenience API (and its coercions)."""

import pytest

from repro.core.api import DeployPoint, deploy_many
from repro.errors import InvalidRequestError


class TestDeployPointCoerce:
    def test_accepts_existing_point(self):
        point = DeployPoint("LeNet", 4)
        assert DeployPoint.coerce(point) is point

    def test_accepts_model_name(self):
        point = DeployPoint.coerce("LeNet")
        assert point.model == "LeNet"
        assert point.duplication_degree == 1

    def test_accepts_tuple_pair(self):
        point = DeployPoint.coerce(("LeNet", 4))
        assert (point.model, point.duplication_degree) == ("LeNet", 4)

    def test_accepts_list_pair(self):
        # JSON round-trips turn tuples into lists; both must coerce
        point = DeployPoint.coerce(["LeNet", 4])
        assert (point.model, point.duplication_degree) == ("LeNet", 4)

    def test_rejects_wrong_arity(self):
        with pytest.raises(InvalidRequestError):
            DeployPoint.coerce(("LeNet", 4, 5))
        with pytest.raises(InvalidRequestError):
            DeployPoint.coerce(["LeNet"])

    def test_rejects_unknown_type_with_type_name(self):
        with pytest.raises(InvalidRequestError) as excinfo:
            DeployPoint.coerce(42)
        assert "int" in str(excinfo.value)
        assert excinfo.value.details["type"] == "int"
        # legacy callers caught TypeError at this site
        with pytest.raises(TypeError):
            DeployPoint.coerce(42)


class TestDeployMany:
    def test_generator_points_materialized_exactly_once(self):
        calls = []

        def points():
            for degree in (1, 2):
                calls.append(degree)
                yield ("MLP-500-100", degree)

        results = deploy_many(points(), jobs=1)
        assert calls == [1, 2]
        assert [r.duplication_degree for r in results] == [1, 2]

    def test_invalid_jobs_is_typed_and_raised_before_compiling(self):
        consumed = []

        def points():
            consumed.append(True)
            yield "MLP-500-100"

        with pytest.raises(InvalidRequestError):
            deploy_many(points(), jobs=0)
        # the generator was materialized (exactly once) but nothing compiled
        assert consumed == [True]
        # legacy callers caught ValueError at this site
        with pytest.raises(ValueError):
            deploy_many(["MLP-500-100"], jobs=-1)

    def test_empty_batch(self):
        assert deploy_many([]) == []

    def test_mixed_point_forms(self):
        results = deploy_many(
            ["MLP-500-100", ("MLP-500-100", 2), DeployPoint("MLP-500-100", 3)],
            jobs=1,
        )
        assert [r.duplication_degree for r in results] == [1, 2, 3]
