"""The fault-tolerance (chaos) section of the benchmark harness."""

from __future__ import annotations

import json

import pytest

import repro.bench as bench
from repro.bench import (
    BenchReport,
    _chaos_plan,
    build_parser,
    compare_reports,
    format_chaos_section,
    run_chaos_bench,
    run_from_args,
)
from repro.errors import InvalidRequestError
from repro.faults import KIND_CRASH, SITE_WORKER_COMPILE
from repro.service import CompileRequest


def _chaos_section(**overrides) -> dict:
    section = {
        "models": ["MLP-500-100", "LeNet"],
        "duplications": [1, 2],
        "copies": 2,
        "rounds": 2,
        "workers": 2,
        "seed": 0,
        "deadline_s": 120.0,
        "max_retries": 3,
        "fault_plan": {"seed": 0, "faults": []},
        "total_requests": 16,
        "ok_requests": 16,
        "availability": 1.0,
        "summaries_identical": True,
        "retried": 3,
        "displaced": 1,
        "rejected": 0,
        "deadline_expired": 0,
        "broken_pool_events": 2,
        "respawns": 2,
        "last_recovery_seconds": 0.001,
        "total_recovery_seconds": 0.002,
        "cache_write_errors": 2,
        "chaos_seconds": 4.2,
    }
    section.update(overrides)
    return section


class TestChaosSection:
    def test_report_roundtrip(self):
        report = BenchReport(created_at=1.0, chaos=_chaos_section())
        again = BenchReport.from_dict(json.loads(report.to_json()))
        assert again.chaos == report.chaos

    def test_reports_without_chaos_stay_compatible(self):
        report = BenchReport(created_at=1.0)
        data = report.to_dict()
        assert "chaos" not in data
        assert BenchReport.from_dict(data).chaos is None

    def test_format_is_human_readable(self):
        text = format_chaos_section(_chaos_section())
        assert "availability: 16/16 (100%)" in text
        assert "2 breakage(s)" in text
        assert "yes" in text


class TestChaosRegressions:
    def test_clean_pass(self):
        current = BenchReport(chaos=_chaos_section())
        assert compare_reports(current, BenchReport()) == []

    def test_availability_floor(self):
        current = BenchReport(
            chaos=_chaos_section(ok_requests=15, availability=15 / 16)
        )
        regressions = compare_reports(current, BenchReport())
        assert len(regressions) == 1
        assert "below the 100% floor" in regressions[0]
        assert (
            compare_reports(
                current, BenchReport(), chaos_min_availability=0.9
            )
            == []
        )

    def test_divergent_summaries_flagged(self):
        current = BenchReport(chaos=_chaos_section(summaries_identical=False))
        regressions = compare_reports(current, BenchReport())
        assert any("differ" in r for r in regressions)

    def test_unbroken_pool_means_nothing_was_exercised(self):
        current = BenchReport(
            chaos=_chaos_section(broken_pool_events=0, respawns=0)
        )
        regressions = compare_reports(current, BenchReport())
        assert any("never broke the worker pool" in r for r in regressions)

    def test_missing_chaos_section_is_not_a_regression(self):
        assert (
            compare_reports(BenchReport(), BenchReport(chaos=_chaos_section()))
            == []
        )


class TestChaosPlan:
    def test_same_seed_same_plan(self):
        requests = [
            CompileRequest(model=m, duplication_degree=d)
            for m in ("MLP-500-100", "LeNet")
            for d in (1, 2)
        ]
        assert _chaos_plan(0, requests) == _chaos_plan(0, requests)
        assert _chaos_plan(0, requests).to_json() == _chaos_plan(
            0, requests
        ).to_json()

    def test_plan_kills_workers_but_stays_self_limiting(self):
        requests = [CompileRequest(model="MLP-500-100")]
        plan = _chaos_plan(3, requests)
        crashes = [
            spec
            for spec in plan.faults
            if spec.site == SITE_WORKER_COMPILE and spec.kind == KIND_CRASH
        ]
        assert len(crashes) >= 2
        # every worker fault is pinned to attempt 0: the supervised retry
        # of the same request must run clean
        for spec in plan.faults:
            if spec.site == SITE_WORKER_COMPILE:
                assert spec.match["attempt"] == 0


class TestChaosBenchRun:
    def test_smoke(self):
        chaos = run_chaos_bench(
            models=["MLP-500-100"],
            duplications=(1,),
            copies=2,
            rounds=2,
            workers=2,
        )
        assert chaos["total_requests"] == 4
        assert chaos["ok_requests"] == 4
        assert chaos["availability"] == 1.0
        assert chaos["summaries_identical"] is True
        assert chaos["broken_pool_events"] >= 1
        assert chaos["respawns"] >= 1
        assert chaos["retried"] >= 1
        assert chaos["chaos_seconds"] > 0

    def test_rejects_degenerate_workloads(self):
        with pytest.raises(InvalidRequestError):
            run_chaos_bench(copies=0)
        with pytest.raises(InvalidRequestError):
            run_chaos_bench(rounds=0)


class TestReportMerge:
    def test_chaos_run_preserves_other_sections(self, tmp_path, capsys,
                                                monkeypatch):
        output = tmp_path / "BENCH.json"
        from repro.bench import BenchEntry

        existing = BenchReport(
            created_at=1.0, serve={"speedup": 5.0}, dedup={"speedup": 2.0}
        )
        existing.entries.append(
            BenchEntry(model="M", duplication_degree=1, channel_width=16, seed=0)
        )
        existing.save(str(output))
        monkeypatch.setattr(
            bench, "run_chaos_bench", lambda **kwargs: _chaos_section()
        )
        args = build_parser().parse_args(["--chaos", "--output", str(output)])
        assert run_from_args(args) == 0
        merged = BenchReport.load(str(output))
        assert merged.chaos == _chaos_section()
        assert [e.model for e in merged.entries] == ["M"]  # carried over
        assert merged.serve == {"speedup": 5.0}  # carried over
        assert merged.dedup == {"speedup": 2.0}  # carried over

    def test_chaos_gate_uses_the_fresh_section(self, tmp_path, capsys,
                                               monkeypatch):
        # --check-regression on a chaos run must gate on the section just
        # measured, not compare the carried-over baseline against itself
        output = tmp_path / "BENCH.json"
        BenchReport(created_at=1.0).save(str(output))
        monkeypatch.setattr(
            bench,
            "run_chaos_bench",
            lambda **kwargs: _chaos_section(ok_requests=0, availability=0.0),
        )
        args = build_parser().parse_args(
            [
                "--chaos",
                "--check-regression",
                "--baseline",
                str(output),
                "--output",
                str(output),
            ]
        )
        assert run_from_args(args) == 1
        assert "below the 100% floor" in capsys.readouterr().err

    def test_chaos_is_mutually_exclusive_with_other_modes(self, capsys):
        for flags in (["--serve", "--chaos"], ["--dedup", "--chaos"]):
            args = build_parser().parse_args(flags)
            assert run_from_args(args) == 2
