"""Tests of the pass-based compilation pipeline, the stage cache and the
batch deployment path."""

import pytest

from repro.arch.params import FPSAConfig
from repro.core import (
    CompileContext,
    CompileOptions,
    CompilePass,
    DeployPoint,
    FPSACompiler,
    PassDependencyError,
    PassError,
    PassManager,
    StageCache,
    UnknownPassError,
    available_passes,
    default_pass_names,
    deploy,
    deploy_many,
    register_pass,
    resolve_passes,
)
from repro.core.cache import config_fingerprint, graph_fingerprint
from repro.models import build_lenet
from repro.models.zoo import build_model


class TestPassRegistry:
    def test_builtin_passes_registered(self):
        registry = available_passes()
        for name in ("synthesis", "mapping", "perf", "bounds", "pnr",
                     "pipeline_sim", "bitstream"):
            assert name in registry

    def test_unknown_pass_rejected(self):
        with pytest.raises(UnknownPassError, match="nonsense"):
            resolve_passes(["synthesis", "nonsense"])

    def test_default_pass_names_follow_options(self):
        assert default_pass_names(CompileOptions()) == [
            "synthesis", "mapping", "perf", "bounds"
        ]
        full = default_pass_names(
            CompileOptions(detailed_schedule=True, run_pnr=True, emit_bitstream=True)
        )
        assert full == [
            "synthesis", "mapping", "perf", "bounds",
            "pnr", "pipeline_sim", "bitstream",
        ]

    def test_custom_pass_registration(self):
        @register_pass
        class MarkerPass(CompilePass):
            name = "test_marker"
            requires = ("coreops",)
            provides = ()

            def run(self, ctx):
                ctx.graph.marker = True

        try:
            assert "test_marker" in available_passes()
            graph = build_lenet()
            FPSACompiler(cache=False).compile(
                graph, passes=("synthesis", "test_marker")
            )
            assert graph.marker is True
        finally:
            from repro.core import pipeline as pipeline_module
            pipeline_module._REGISTRY.pop("test_marker", None)

    def test_custom_pass_may_require_initial_artifacts(self):
        class InputAwarePass(CompilePass):
            name = "test_input_aware"
            requires = ("graph", "coreops")
            provides = ()
            seen = None

            def run(self, ctx):
                InputAwarePass.seen = ctx.get("graph").name

        manager = PassManager(resolve_passes(["synthesis"]) + [InputAwarePass()])
        compiler = FPSACompiler(cache=False)
        ctx = CompileContext(graph=build_lenet(), config=compiler.config)
        manager.run(ctx)
        assert InputAwarePass.seen == "LeNet"


class TestPassManagerValidation:
    def test_misordered_pipeline_rejected(self):
        with pytest.raises(PassDependencyError, match="mapping"):
            PassManager(resolve_passes(["mapping", "synthesis"]))

    def test_missing_producer_rejected(self):
        with pytest.raises(PassDependencyError, match="perf"):
            PassManager(resolve_passes(["synthesis", "perf"]))

    def test_duplicate_passes_rejected(self):
        with pytest.raises(PassError, match="duplicate"):
            PassManager(resolve_passes(["synthesis", "synthesis"]))

    def test_compile_with_invalid_pass_subset_raises(self):
        compiler = FPSACompiler(cache=False)
        with pytest.raises(PassDependencyError):
            compiler.compile(build_lenet(), passes=("perf",))


class TestPartialCompile:
    def test_frontend_only_compile(self):
        result = FPSACompiler(cache=False).compile(
            build_lenet(), duplication_degree=2, passes=("synthesis", "mapping")
        )
        assert result.coreops is not None
        assert result.mapping is not None
        assert result.performance is None
        assert result.bounds is None
        assert [t.name for t in result.timings] == ["synthesis", "mapping"]
        # the summary degrades gracefully for partial results
        assert "LeNet" in result.summary()
        # accessors for missing artifacts raise a clear error, not a
        # NoneType AttributeError
        with pytest.raises(ValueError, match="performance"):
            _ = result.throughput_samples_per_s
        with pytest.raises(ValueError, match="performance"):
            _ = result.area_mm2
        # mapping ran, so its accessor works
        assert result.duplication_degree == 2

    def test_explicit_pipeline_sim_pass_implies_detailed_schedule(self):
        result = FPSACompiler(cache=False).compile(
            build_lenet(), passes=("synthesis", "mapping", "pipeline_sim")
        )
        assert result.mapping.schedule is not None
        assert result.pipeline is not None
        assert result.pipeline.throughput_samples_per_s > 0

    def test_full_compile_records_timings(self):
        result = FPSACompiler(cache=False).compile(build_lenet())
        assert [t.name for t in result.timings] == [
            "synthesis", "mapping", "perf", "bounds"
        ]
        assert all(t.seconds >= 0 for t in result.timings)
        assert not any(t.cached for t in result.timings)
        assert "pass" in result.timings_table()


class TestStageCache:
    def test_same_graph_twice_skips_synthesis_and_mapping(self):
        cache = StageCache()
        compiler = FPSACompiler(cache=cache)
        first = compiler.compile(build_lenet(), duplication_degree=4)
        second = compiler.compile(build_lenet(), duplication_degree=4)

        first_cached = {t.name for t in first.timings if t.cached}
        second_cached = {t.name for t in second.timings if t.cached}
        assert first_cached == set()
        assert second_cached == {"synthesis", "mapping"}
        assert cache.stats.hits == 2
        assert cache.stats.misses == 2
        # cached artifacts produce an identical deployment
        assert second.throughput_samples_per_s == first.throughput_samples_per_s
        assert second.mapping.netlist.n_pe == first.mapping.netlist.n_pe

    def test_changed_options_miss_mapping_but_hit_synthesis(self):
        cache = StageCache()
        compiler = FPSACompiler(cache=cache)
        compiler.compile(build_lenet(), duplication_degree=1)
        result = compiler.compile(build_lenet(), duplication_degree=8)
        cached = {t.name for t in result.timings if t.cached}
        assert cached == {"synthesis"}

    def test_changed_graph_misses_everything(self):
        cache = StageCache()
        compiler = FPSACompiler(cache=cache)
        compiler.compile(build_lenet())
        result = compiler.compile(build_model("MLP-500-100"))
        assert not any(t.cached for t in result.timings)

    def test_use_cache_false_bypasses(self):
        cache = StageCache()
        compiler = FPSACompiler(cache=cache)
        compiler.compile(build_lenet())
        result = compiler.compile(build_lenet(), use_cache=False)
        assert not any(t.cached for t in result.timings)

    def test_cache_disabled_compiler(self):
        compiler = FPSACompiler(cache=False)
        assert compiler.cache is None
        compiler.compile(build_lenet())
        result = compiler.compile(build_lenet())
        assert not any(t.cached for t in result.timings)

    def test_lru_eviction_and_clear(self):
        cache = StageCache(max_entries=1)
        cache.put("a", {"coreops": 1})
        cache.put("b", {"coreops": 2})
        assert "a" not in cache
        assert cache.get("b") == {"coreops": 2}
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.lookups == 0

    def test_mapping_key_tracks_coreops_artifact(self):
        # the mapping cache key must follow the coreops artifact actually
        # consumed, not the graph it was synthesized from
        from repro.mapper.passes import mapping_fingerprint
        from repro.synthesizer.coreop import CoreOpGraph, WeightGroup

        compiler = FPSACompiler(cache=False)
        standard = compiler.compile(build_lenet(), passes=("synthesis",))
        ctx = CompileContext(graph=build_lenet(), config=compiler.config)
        ctx.coreops = standard.coreops
        standard_key = mapping_fingerprint(ctx)

        custom = CoreOpGraph(standard.coreops.name)
        custom.add_group(
            WeightGroup(name="g", source="s", kind="matmul",
                        rows=16, cols=16, reuse=1)
        )
        ctx.coreops = custom
        assert mapping_fingerprint(ctx) != standard_key

    def test_fingerprints_are_stable_and_discriminating(self):
        g1, g2 = build_lenet(), build_lenet()
        assert graph_fingerprint(g1) == graph_fingerprint(g2)
        assert graph_fingerprint(g1) != graph_fingerprint(build_model("MLP-500-100"))
        config = FPSAConfig()
        assert config_fingerprint(config) == config_fingerprint(FPSAConfig())


class TestDeployMany:
    DEGREES = (1, 2, 4, 8)

    def test_parallel_matches_sequential_deploy(self):
        points = [DeployPoint(build_lenet(), d) for d in self.DEGREES]
        batch = deploy_many(points, jobs=2, cache=False)
        sequential = [
            deploy(build_lenet(), duplication_degree=d, cache=False)
            for d in self.DEGREES
        ]
        assert len(batch) == len(sequential) == len(self.DEGREES)
        for got, want in zip(batch, sequential, strict=True):
            assert got.model == want.model
            assert got.duplication_degree == want.duplication_degree
            assert got.mapping.netlist.n_pe == want.mapping.netlist.n_pe
            assert got.throughput_samples_per_s == want.throughput_samples_per_s
            assert got.latency_us == want.latency_us
            assert got.area_mm2 == want.area_mm2
            assert got.bounds.temporal_bound == want.bounds.temporal_bound

    def test_parallel_private_cache_stays_private(self):
        # a private cache cannot cross process boundaries; workers receive a
        # sentinel and build fresh private caches instead of falling back to
        # the process-wide default one
        from repro.core.api import _deploy_point
        from repro.core.cache import default_cache

        before = default_cache().stats.lookups
        result = _deploy_point((DeployPoint("LeNet", 2), None, {}, "__private__"))
        assert result.mapping is not None
        assert default_cache().stats.lookups == before
        # end to end: the parallel path accepts a private cache
        results = deploy_many(
            [("LeNet", d) for d in self.DEGREES], jobs=2, cache=StageCache()
        )
        assert len(results) == len(self.DEGREES)

    def test_sequential_path_shares_cache(self):
        cache = StageCache()
        results = deploy_many(
            [("LeNet", d) for d in self.DEGREES], jobs=1, cache=cache
        )
        assert len(results) == len(self.DEGREES)
        # one synthesis miss, then one hit per remaining point
        assert cache.stats.hits == len(self.DEGREES) - 1

    def test_point_coercion(self):
        assert DeployPoint.coerce("LeNet").model == "LeNet"
        assert DeployPoint.coerce(("LeNet", 4)).duplication_degree == 4
        graph = build_lenet()
        assert DeployPoint.coerce(graph).model is graph
        point = DeployPoint("LeNet", 2)
        assert DeployPoint.coerce(point) is point
        with pytest.raises(TypeError):
            DeployPoint.coerce(42)

    def test_common_kwargs_and_per_point_override(self):
        points = [
            DeployPoint("LeNet", 1),
            DeployPoint("LeNet", 1, compile_kwargs={"passes": ("synthesis",)}),
        ]
        full, partial = deploy_many(
            points, jobs=1, cache=False, passes=("synthesis", "mapping")
        )
        assert full.mapping is not None
        assert partial.mapping is None
        assert partial.coreops is not None

    def test_empty_batch(self):
        assert deploy_many([]) == []

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValueError):
            deploy_many(["LeNet"], jobs=0)
