"""End-to-end behaviour of the multi-chip partitioned compilation flow."""

from __future__ import annotations

import pytest

from repro.core.api import deploy_model
from repro.core.cache import StageCache, netlist_fingerprint
from repro.errors import CapacityError, InvalidRequestError
from repro.mapper.mapper import SpatialTemporalMapper
from repro.service import CompileRequest, FPSAClient
from repro.service.schemas import CompileResponse, ResultSummary


class TestOneChipIdentity:
    def test_bit_identical_to_unpartitioned_pipeline(self):
        """num_chips=1 must not change a single artifact (fixed seed)."""
        legacy = deploy_model(
            "LeNet", duplication_degree=4, run_pnr=True, seed=11, use_cache=False
        )
        one = deploy_model(
            "LeNet", duplication_degree=4, run_pnr=True, seed=11,
            num_chips=1, use_cache=False,
        )
        assert netlist_fingerprint(one.mapping.netlist) == netlist_fingerprint(
            legacy.mapping.netlist
        )
        assert one.mapping.allocation == legacy.mapping.allocation
        assert one.performance == legacy.performance
        assert one.bounds == legacy.bounds
        assert one.pnr.total_wirelength == legacy.pnr.total_wirelength
        assert one.pnr.critical_path_ns == legacy.pnr.critical_path_ns
        assert one.pnr.placement.positions == legacy.pnr.placement.positions

    def test_identity_partition_metadata(self):
        result = deploy_model("LeNet", num_chips=1, use_cache=False)
        assert result.partition is not None
        assert result.partition.num_chips == 1
        assert result.partition.cut_size == 0
        assert result.shard_results is None
        assert result.partition.shards[0].coreops is result.coreops


class TestMultiChipCompile:
    def test_shards_cover_the_model(self):
        result = deploy_model(
            "CIFAR-VGG17", duplication_degree=64, num_chips=2, use_cache=False
        )
        plan = result.partition
        assert plan.num_chips == 2
        assert len(result.shard_results) == 2
        # the union of the shard netlists carries every allocated PE
        total_pes = sum(r.mapping.netlist.n_pe for r in result.shard_results)
        assert total_pes == plan.total_pes
        # combined report spans both chips
        assert result.performance is not None
        assert result.performance.n_pe == total_pes
        assert result.bounds is not None
        assert result.mapping is None  # no single-chip netlist exists

    def test_cut_traffic_caps_throughput(self):
        """The inter-chip link ceiling must bind when the cut is busy."""
        single = deploy_model(
            "CIFAR-VGG17", duplication_degree=64, num_chips=1, use_cache=False
        )
        split = deploy_model(
            "CIFAR-VGG17", duplication_degree=64, num_chips=2, use_cache=False
        )
        assert split.partition.cut_values_per_sample > 0
        assert (
            split.performance.throughput_samples_per_s
            <= single.performance.throughput_samples_per_s
        )
        assert split.performance.latency_us >= single.performance.latency_us

    def test_shard_jobs_pool_matches_sequential(self):
        sequential = deploy_model(
            "CIFAR-VGG17", duplication_degree=16, num_chips=2, use_cache=False
        )
        pooled = deploy_model(
            "CIFAR-VGG17", duplication_degree=16, num_chips=2,
            shard_jobs=2, use_cache=False,
        )
        assert pooled.performance == sequential.performance
        assert pooled.bounds == sequential.bounds
        for a, b in zip(sequential.shard_results, pooled.shard_results, strict=True):
            assert netlist_fingerprint(a.mapping.netlist) == netlist_fingerprint(
                b.mapping.netlist
            )

    def test_partitioned_pnr_runs_per_shard(self):
        result = deploy_model(
            "LeNet", duplication_degree=64, num_chips=2, run_pnr=True,
            seed=5, use_cache=False,
        )
        assert result.pnr is None  # no whole-model netlist to place
        for shard_result in result.shard_results:
            assert shard_result.pnr is not None
            assert shard_result.pnr.total_wirelength > 0

    def test_shards_hit_the_stage_cache_independently(self):
        cache = StageCache()
        client = FPSAClient(cache=cache)
        request = CompileRequest(
            model="CIFAR-VGG17", duplication_degree=64, num_chips=2
        )
        cold = client.compile(request)
        warm = client.compile(request)
        assert cold.ok and warm.ok
        assert warm.timings.cache_hits > cold.timings.cache_hits
        # every cacheable backend stage of the warm compile is a per-shard
        # cache hit (perf/bounds are cheap and intentionally uncached)
        warm_mappings = [
            p for p in warm.timings.passes if p.name.startswith("mapping@chip")
        ]
        assert warm_mappings and all(p.cached for p in warm_mappings)

    def test_explicit_passes_conflict_with_num_chips(self):
        with pytest.raises(InvalidRequestError):
            deploy_model("LeNet", num_chips=2, passes=("synthesis", "mapping"))


class TestCapacityPreflight:
    def test_oversized_model_raises_on_one_chip(self):
        with pytest.raises(CapacityError) as err:
            deploy_model("VGG16", num_chips=1, use_cache=False)
        details = err.value.details
        assert details["required_pes"] > details["available_pes"]

    def test_auto_mode_shards_the_oversized_model(self):
        """The acceptance path: CapacityError turns into an automatic
        shard-it compile under num_chips='auto'."""
        result = deploy_model("VGG16", num_chips="auto", use_cache=False)
        plan = result.partition
        assert plan.num_chips >= 2
        capacity = plan.capacity_pes_per_chip
        for shard in plan.shards:
            assert shard.pes <= capacity
        assert result.performance is not None

    def test_mapper_preflight_check_reports_counts(self, lenet_coreops, config):
        mapper = SpatialTemporalMapper(config)
        with pytest.raises(CapacityError) as err:
            mapper.map(lenet_coreops, duplication_degree=1, max_pes=3)
        details = err.value.details
        assert details["available_pes"] == 3
        assert details["required_pes"] > 3

    def test_legacy_flow_is_not_capacity_checked(self):
        # VGG16 exceeds one chip's capacity, but the classic single-chip
        # pipeline (num_chips unset) keeps its historical behaviour
        result = deploy_model("VGG16", passes=("synthesis", "mapping"))
        assert result.mapping is not None


class TestPartitionWire:
    def test_summary_partition_round_trips(self):
        response = FPSAClient(cache=False).compile(
            CompileRequest(model="CIFAR-VGG17", duplication_degree=64, num_chips=2)
        )
        assert response.ok
        partition = response.summary.partition
        assert partition["num_chips"] == 2
        assert partition["cut_size"] >= 1
        assert partition["cut_values_per_sample"] > 0
        assert len(partition["shards"]) == 2
        for shard in partition["shards"]:
            assert 0 < shard["utilization"] <= 1.0
            assert shard["blocks"]["n_pe"] > 0

        # JSON round-trip preserves the partition section exactly
        rehydrated = CompileResponse.from_json(response.to_json())
        assert rehydrated.summary.partition == partition
        assert rehydrated.request.num_chips == 2

    def test_request_round_trips_auto_chips(self):
        request = CompileRequest(model="VGG16", num_chips="auto", shard_jobs=2)
        again = CompileRequest.from_json(request.to_json())
        assert again.num_chips == "auto"
        assert again.shard_jobs == 2
        assert again.fingerprint() == request.fingerprint()

    def test_invalid_num_chips_rejected(self):
        with pytest.raises(InvalidRequestError):
            CompileRequest(model="LeNet", num_chips=0)
        with pytest.raises(InvalidRequestError):
            CompileRequest(model="LeNet", num_chips="many")
        with pytest.raises(InvalidRequestError):
            CompileRequest(model="LeNet", shard_jobs=0)

    def test_capacity_error_crosses_the_wire(self):
        response = FPSAClient(cache=False).compile(
            CompileRequest(model="VGG16", num_chips=1)
        )
        assert not response.ok
        assert response.error.code == "capacity_error"
        assert response.error.details["required_pes"] > 0
        with pytest.raises(CapacityError):
            response.raise_for_status()

    def test_summary_identity_partition_over_the_wire(self):
        response = FPSAClient(cache=False).compile(
            CompileRequest(model="LeNet", num_chips=1)
        )
        assert response.ok
        partition = response.summary.partition
        assert partition["num_chips"] == 1
        assert partition["cut_size"] == 0
        summary = ResultSummary.from_dict(response.summary.to_dict())
        assert summary.partition == partition
