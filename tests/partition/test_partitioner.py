"""Property-based invariants of the multi-chip graph partitioner.

Randomized core-op graphs check the invariants the partitioner must uphold
for any model:

* every weight group is assigned to exactly one chip (shards are a
  disjoint cover),
* no shard exceeds the per-chip PE capacity when one is enforced,
* the recorded cut-edge set is exactly the set of group-to-group edges
  whose endpoints land on different chips,
* shard PE counts equal the whole-model allocation restricted to the
  shard's groups (and sum to the model total),
* a 1-chip partition is the identity (the shard's core-op graph *is* the
  input object).
"""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.params import PEParams
from repro.errors import CapacityError, InvalidRequestError
from repro.mapper.allocation import allocate
from repro.partition.partitioner import partition_coreops
from repro.synthesizer.coreop import GRAPH_INPUT, GRAPH_OUTPUT, CoreOpGraph, WeightGroup

PE = PEParams()


def random_coreops(seed: int, n_groups: int) -> CoreOpGraph:
    """A random layered core-op DAG (chain plus short skip edges)."""
    rng = random.Random(seed)
    graph = CoreOpGraph(f"rand{seed}")
    names = [f"g{i}" for i in range(n_groups)]
    for name in names:
        rows = rng.randint(1, 700)
        cols = rng.randint(1, 700)
        graph.add_group(
            WeightGroup(
                name=name,
                source=name,
                kind="matmul",
                rows=rows,
                cols=cols,
                reuse=rng.randint(1, 64),
                macs_per_instance=rows * cols,
            )
        )
    graph.add_edge(GRAPH_INPUT, names[0], rng.randint(1, 64))
    for i in range(1, n_groups):
        src = names[rng.randint(max(0, i - 3), i - 1)]
        graph.add_edge(src, names[i], rng.randint(1, 256))
    graph.add_edge(names[-1], GRAPH_OUTPUT, rng.randint(1, 64))
    return graph


graph_params = st.tuples(
    st.integers(min_value=0, max_value=2**16),  # rng seed
    st.integers(min_value=2, max_value=14),     # groups
)


def group_weights(graph: CoreOpGraph, duplication_degree: int) -> dict[str, int]:
    allocation = allocate(graph, duplication_degree, PE)
    return {
        name: alloc.pes * allocation.replication
        for name, alloc in allocation.allocations.items()
    }


class TestPartitionInvariants:
    @settings(max_examples=40, deadline=None)
    @given(params=graph_params, k=st.integers(min_value=1, max_value=5), dup=st.integers(min_value=1, max_value=8))
    def test_every_group_assigned_exactly_once(self, params, k, dup):
        seed, n_groups = params
        graph = random_coreops(seed, n_groups)
        k = min(k, n_groups)
        plan = partition_coreops(graph, num_chips=k, duplication_degree=dup)
        all_groups = {g.name for g in graph.groups()}
        seen: list[str] = []
        for shard in plan.shards:
            seen.extend(shard.groups)
            assert set(shard.groups) == {g.name for g in shard.coreops.groups()}
        assert sorted(seen) == sorted(all_groups)  # disjoint cover
        assert plan.assignment.keys() == all_groups
        for name, chip in plan.assignment.items():
            assert name in plan.shards[chip].groups

    @settings(max_examples=40, deadline=None)
    @given(params=graph_params, slack=st.floats(min_value=1.0, max_value=3.0), dup=st.integers(min_value=1, max_value=8))
    def test_no_shard_over_capacity_in_auto_mode(self, params, slack, dup):
        seed, n_groups = params
        graph = random_coreops(seed, n_groups)
        weights = group_weights(graph, dup)
        capacity = max(1, int(max(weights.values()) * slack))
        plan = partition_coreops(
            graph, num_chips="auto", duplication_degree=dup, capacity_pes=capacity
        )
        for shard in plan.shards:
            assert shard.pes <= capacity
            assert shard.groups  # no empty chip
        # at least the information-theoretic minimum number of chips
        assert plan.num_chips >= math.ceil(sum(weights.values()) / capacity)

    @settings(max_examples=40, deadline=None)
    @given(params=graph_params, k=st.integers(min_value=2, max_value=5))
    def test_cut_edge_set_matches_assignment(self, params, k):
        seed, n_groups = params
        graph = random_coreops(seed, n_groups)
        k = min(k, n_groups)
        plan = partition_coreops(graph, num_chips=k)
        expected = {
            (e.src, e.dst)
            for e in graph.edges()
            if e.src in graph
            and e.dst in graph
            and plan.assignment[e.src] != plan.assignment[e.dst]
        }
        recorded = {(c.src, c.dst) for c in plan.cut_edges}
        assert recorded == expected
        for cut in plan.cut_edges:
            assert cut.src_chip == plan.assignment[cut.src]
            assert cut.dst_chip == plan.assignment[cut.dst]
            assert cut.traffic_values_per_sample == (
                cut.values_per_instance * graph.group(cut.dst).reuse
            )

    @settings(max_examples=40, deadline=None)
    @given(params=graph_params, k=st.integers(min_value=1, max_value=5), dup=st.integers(min_value=1, max_value=8))
    def test_shard_pes_match_whole_model_allocation(self, params, k, dup):
        seed, n_groups = params
        graph = random_coreops(seed, n_groups)
        k = min(k, n_groups)
        weights = group_weights(graph, dup)
        plan = partition_coreops(graph, num_chips=k, duplication_degree=dup)
        assert plan.total_pes == sum(weights.values())
        for shard in plan.shards:
            assert shard.pes == sum(weights[name] for name in shard.groups)
        assert sum(s.pes for s in plan.shards) == plan.total_pes

    @settings(max_examples=25, deadline=None)
    @given(params=graph_params, dup=st.integers(min_value=1, max_value=8))
    def test_one_chip_partition_is_identity(self, params, dup):
        seed, n_groups = params
        graph = random_coreops(seed, n_groups)
        plan = partition_coreops(graph, num_chips=1, duplication_degree=dup)
        assert plan.num_chips == 1
        assert len(plan.shards) == 1
        assert plan.shards[0].coreops is graph  # the very same object
        assert plan.cut_edges == []
        assert plan.cut_values_per_sample == 0.0

    @settings(max_examples=25, deadline=None)
    @given(params=graph_params, k=st.integers(min_value=2, max_value=4))
    def test_partition_is_deterministic(self, params, k):
        seed, n_groups = params
        graph = random_coreops(seed, n_groups)
        k = min(k, n_groups)
        first = partition_coreops(graph, num_chips=k)
        second = partition_coreops(graph, num_chips=k)
        assert first.assignment == second.assignment
        assert first.cut_edges == second.cut_edges

    @settings(max_examples=25, deadline=None)
    @given(params=graph_params, k=st.integers(min_value=2, max_value=4))
    def test_shards_preserve_boundary_traffic(self, params, k):
        """Cross-chip edges reappear as graph-boundary edges of the shards."""
        seed, n_groups = params
        graph = random_coreops(seed, n_groups)
        k = min(k, n_groups)
        plan = partition_coreops(graph, num_chips=k)
        if plan.num_chips == 1:
            return
        for cut in plan.cut_edges:
            src_shard = plan.shards[cut.src_chip].coreops
            dst_shard = plan.shards[cut.dst_chip].coreops
            assert any(
                e.src == cut.src and e.dst == GRAPH_OUTPUT
                and e.values_per_instance == cut.values_per_instance
                for e in src_shard.edges()
            )
            assert any(
                e.src == GRAPH_INPUT and e.dst == cut.dst
                and e.values_per_instance == cut.values_per_instance
                for e in dst_shard.edges()
            )


class TestPartitionErrors:
    def test_more_chips_than_groups_rejected(self):
        graph = random_coreops(1, 3)
        with pytest.raises(InvalidRequestError):
            partition_coreops(graph, num_chips=4)

    def test_indivisible_group_over_capacity(self):
        graph = CoreOpGraph("big-group")
        graph.add_group(
            WeightGroup(
                name="huge", source="huge", kind="matmul",
                rows=PE.rows * 4, cols=PE.logical_cols * 4, reuse=1,
            )
        )
        with pytest.raises(CapacityError) as err:
            partition_coreops(graph, num_chips="auto", capacity_pes=8)
        assert err.value.details["required_pes"] == 16
        assert err.value.details["available_pes"] == 8

    def test_explicit_chips_below_requirement(self):
        graph = random_coreops(2, 8)
        total = sum(group_weights(graph, 1).values())
        capacity = max(group_weights(graph, 1).values())
        if total <= capacity:  # pragma: no cover - depends on the rng draw
            pytest.skip("graph fits one chip")
        with pytest.raises(CapacityError) as err:
            partition_coreops(graph, num_chips=1, capacity_pes=capacity)
        details = err.value.details
        assert details["required_pes"] == total
        assert details["available_pes"] == capacity
        assert details["min_chips"] >= 2

    def test_auto_requires_capacity(self):
        graph = random_coreops(3, 4)
        with pytest.raises(InvalidRequestError):
            partition_coreops(graph, num_chips="auto")

    def test_unbalanceable_explicit_split_is_rejected(self):
        """Aggregate capacity can pass while no contiguous k-way split fits
        (group granularity): the enforcement contract must still hold."""
        # weights 8/2/8 PEs against capacity 9: 18 <= 2x9 passes the
        # aggregate check, but both contiguous 2-way splits put 10 PEs on
        # one chip
        graph = CoreOpGraph("lumpy")
        for i, tiles in enumerate((8, 2, 8)):
            graph.add_group(
                WeightGroup(
                    name=f"g{i}", source=f"g{i}", kind="matmul",
                    rows=PE.rows, cols=PE.logical_cols * tiles, reuse=1,
                )
            )
        graph.add_edge("g0", "g1", 1)
        graph.add_edge("g1", "g2", 1)
        with pytest.raises(CapacityError) as err:
            partition_coreops(graph, num_chips=2, capacity_pes=9)
        assert err.value.details["min_chips"] >= 3

    def test_one_chip_shares_mapping_cache_with_legacy_flow(self):
        """num_chips=1 must alias the classic pipeline's cache entries."""
        from repro.core.cache import StageCache
        from repro.core.compiler import FPSACompiler
        from repro.models.zoo import build_model

        cache = StageCache()
        compiler = FPSACompiler(cache=cache)
        graph = build_model("LeNet")
        legacy = compiler.compile(graph, duplication_degree=4)
        identity = compiler.compile(graph, duplication_degree=4, num_chips=1)
        cached = {t.name: t.cached for t in identity.timings}
        assert cached["mapping"] is True  # served from the legacy entry
        assert identity.mapping is legacy.mapping  # shared by reference
