"""Tests of the experiment harnesses: every table/figure regenerates and
shows the paper's qualitative findings (orderings, ratios, crossovers)."""

import math

import pytest

from repro.experiments import (
    EXPERIMENTS,
    ablations,
    fig2,
    fig6,
    fig7,
    fig8,
    fig9,
    motivation,
    run_all,
    table1,
    table2,
    table3,
)
from repro.experiments.common import ExperimentResult, format_si, format_table, ratio


class TestCommon:
    def test_format_table(self):
        text = format_table([{"a": 1, "b": 2.5}, {"a": 10, "b": 0.125}])
        assert "a" in text and "10" in text

    def test_format_table_empty(self):
        assert format_table([]) == "(no rows)"

    def test_format_si(self):
        assert format_si(1.5e12, "OPS") == "1.5 TOPS"
        assert format_si(0, "OPS") == "0 OPS"

    def test_ratio_guard(self):
        assert ratio(2.0, 0.0) == float("inf")
        assert ratio(3.0, 1.5) == pytest.approx(2.0)

    def test_experiment_result_roundtrip(self):
        result = ExperimentResult("X", "desc")
        result.add_row(a=1, b=2)
        result.add_note("note")
        assert result.column("a") == [1]
        assert "note" in result.format()


class TestTable1:
    def test_runs_and_reports_all_blocks(self):
        result = table1.run()
        blocks = result.column("block")
        assert any("PE" in b for b in blocks)
        assert any("CLB" in b for b in blocks)
        assert any("SMB" in b for b in blocks)


class TestTable2:
    def test_density_improvement_about_31x(self):
        result = table2.run()
        rows = {row["architecture"]: row for row in result.rows}
        improvement = (
            rows["FPSA"]["density_TOPS_per_mm2"] / rows["PRIME"]["density_TOPS_per_mm2"]
        )
        assert improvement == pytest.approx(30.92, rel=0.03)

    def test_measured_matches_paper_columns(self):
        result = table2.run()
        for row in result.rows:
            if math.isnan(row["paper_density_TOPS_per_mm2"]):
                continue
            assert row["density_TOPS_per_mm2"] == pytest.approx(
                row["paper_density_TOPS_per_mm2"], rel=0.02
            )


@pytest.fixture(scope="module")
def fig2_result():
    return fig2.run(areas_mm2=[10.0, 100.0, 300.0, 1000.0, 3000.0, 10000.0])


@pytest.fixture(scope="module")
def fig6_result():
    return fig6.run(areas_mm2=[100.0, 300.0, 1000.0, 3000.0, 10000.0])


class TestFig2:
    def test_peak_dominates_ideal_dominates_real(self, fig2_result):
        for row in fig2_result.rows:
            if not row["mapped"]:
                continue
            assert row["peak_ops"] >= row["ideal_ops"] >= row["real_ops"] > 0

    def test_real_saturates_with_area(self, fig2_result):
        mapped = [r for r in fig2_result.rows if r["mapped"]]
        assert mapped[-1]["real_ops"] == pytest.approx(mapped[-2]["real_ops"], rel=0.1)

    def test_communication_gap_at_least_two_orders(self, fig2_result):
        last = [r for r in fig2_result.rows if r["mapped"]][-1]
        assert last["ideal_ops"] / last["real_ops"] > 100

    def test_ideal_superlinear_region(self, fig2_result):
        mapped = [r for r in fig2_result.rows if r["mapped"]]
        first, second = mapped[0], mapped[1]
        area_ratio = second["area_mm2"] / first["area_mm2"]
        perf_ratio = second["ideal_ops"] / first["ideal_ops"]
        assert perf_ratio > area_ratio

    def test_small_areas_unmappable(self, fig2_result):
        assert fig2_result.rows[0]["mapped"] is False


class TestFig6:
    def test_architecture_ordering_at_every_area(self, fig6_result):
        for row in fig6_result.rows:
            if row["PRIME_real_ops"] == 0:
                continue
            assert row["FPSA_real_ops"] > row["PRIME_real_ops"]
            assert row["FP-PRIME_real_ops"] > row["PRIME_real_ops"]

    def test_speedup_reaches_hundreds(self, fig6_result):
        speedups = [
            row["speedup_FPSA"] for row in fig6_result.rows if row["PRIME_real_ops"] > 0
        ]
        assert max(speedups) > 300

    def test_speedup_grows_with_area(self, fig6_result):
        speedups = [
            row["speedup_FPSA"] for row in fig6_result.rows if row["PRIME_real_ops"] > 0
        ]
        assert speedups[-1] > speedups[0]

    def test_fp_prime_close_to_its_ideal(self, fig6_result):
        # FP-PRIME shares PRIME's PE, so its ideal is PRIME's ideal; its real
        # performance should sit well above PRIME's bus-bound real value.
        for row in fig6_result.rows:
            if row["PRIME_real_ops"] == 0:
                continue
            assert row["speedup_FP-PRIME"] > 2


class TestFig7:
    @pytest.fixture(scope="class")
    def result(self):
        return fig7.run()

    def test_prime_communication_dominates(self, result):
        rows = {r["architecture"]: r for r in result.rows}
        assert rows["PRIME"]["communication_ns"] > rows["PRIME"]["computation_ns"]

    def test_fp_prime_communication_negligible(self, result):
        rows = {r["architecture"]: r for r in result.rows}
        assert rows["FP-PRIME"]["communication_ns"] < 0.1 * rows["FP-PRIME"]["computation_ns"]

    def test_fpsa_communication_exceeds_computation(self, result):
        rows = {r["architecture"]: r for r in result.rows}
        assert rows["FPSA"]["communication_ns"] > rows["FPSA"]["computation_ns"]

    def test_values_within_factor_two_of_paper(self, result):
        for row in result.rows:
            assert row["computation_ns"] == pytest.approx(row["paper_computation_ns"], rel=0.05)
            assert row["communication_ns"] == pytest.approx(
                row["paper_communication_ns"], rel=1.0
            )


class TestFig8:
    @pytest.fixture(scope="class")
    def result(self):
        return fig8.run(models=("MLP-500-100", "LeNet", "VGG16", "GoogLeNet"))

    def test_performance_rises_with_duplication(self, result):
        by_model: dict[str, list] = {}
        for row in result.rows:
            by_model.setdefault(row["model"], []).append(row)
        for rows in by_model.values():
            perfs = [r["real_ops"] for r in rows]
            assert perfs[-1] > perfs[0]

    def test_superlinear_scaling_in_area(self, result):
        """Figure 8's headline: performance grows much faster than area."""
        for model in ("VGG16", "GoogLeNet"):
            rows = [r for r in result.rows if r["model"] == model]
            perf_gain = rows[-1]["real_ops"] / rows[0]["real_ops"]
            area_gain = rows[-1]["area_mm2"] / rows[0]["area_mm2"]
            assert perf_gain > 3 * area_gain

    def test_spatial_bound_constant_temporal_rises(self, result):
        vgg_rows = [r for r in result.rows if r["model"] == "VGG16"]
        spatial = {round(r["spatial_bound"]) for r in vgg_rows}
        assert len(spatial) == 1
        temporal = [r["temporal_bound"] for r in vgg_rows]
        assert temporal[-1] > temporal[0]

    def test_bounds_ordering(self, result):
        for row in result.rows:
            assert row["peak_density"] >= row["spatial_bound"] * 0.999
            assert row["spatial_bound"] >= row["temporal_bound"] * 0.999

    def test_mlp_bounds_coincide(self, result):
        mlp_rows = [r for r in result.rows if r["model"] == "MLP-500-100"]
        final = mlp_rows[-1]
        assert final["temporal_bound"] == pytest.approx(final["spatial_bound"], rel=0.05)

    def test_geomean_notes_present(self, result):
        assert any("geometric-mean" in note for note in result.notes)


class TestFig9:
    @pytest.fixture(scope="class")
    def result(self):
        return fig9.run(montecarlo=False)

    def test_add_approaches_full_precision(self, result):
        add_rows = [r for r in result.rows if r["method"] == "add"]
        assert add_rows[-1]["normalized_accuracy"] > 0.95

    def test_splice_stuck_near_variation_bound(self, result):
        splice_rows = [r for r in result.rows if r["method"] == "splice" and r["n_cells"] >= 2]
        assert all(r["normalized_accuracy"] < 0.8 for r in splice_rows)

    def test_paper_anchor_points(self, result):
        for row in result.rows:
            anchor = row["paper_anchor"]
            if anchor == anchor:  # not NaN
                assert row["normalized_accuracy"] == pytest.approx(anchor, abs=0.06)

    def test_add_beats_splice_at_every_cell_count_above_one(self, result):
        add = {r["n_cells"]: r["normalized_accuracy"] for r in result.rows if r["method"] == "add"}
        splice = {
            r["n_cells"]: r["normalized_accuracy"] for r in result.rows if r["method"] == "splice"
        }
        for n in add:
            if n > 1:
                assert add[n] > splice[n]

    def test_montecarlo_column_populated_when_enabled(self):
        result = fig9.run(n_cells_list=(1, 8), montecarlo=True, montecarlo_trials=1)
        values = [r["montecarlo_accuracy"] for r in result.rows]
        assert all(v == v for v in values)  # no NaN


class TestTable3:
    @pytest.fixture(scope="class")
    def result(self):
        return table3.run(models=("LeNet", "AlexNet", "VGG16"))

    def test_rows_have_paper_references(self, result):
        for row in result.rows:
            assert row["paper_area_mm2"] == row["paper_area_mm2"]

    def test_imagenet_models_within_2x_of_paper(self, result):
        for row in result.rows:
            if row["model"] in ("AlexNet", "VGG16"):
                assert 0.5 < row["throughput_samples_s"] / row["paper_throughput"] < 2.0
                assert 0.3 < row["latency_us"] / row["paper_latency_us"] < 3.0
                assert 0.5 < row["area_mm2"] / row["paper_area_mm2"] < 2.0

    def test_throughput_ordering_matches_model_size(self, result):
        by_model = {r["model"]: r for r in result.rows}
        assert (
            by_model["LeNet"]["throughput_samples_s"]
            > by_model["AlexNet"]["throughput_samples_s"]
            > by_model["VGG16"]["throughput_samples_s"]
        )


class TestAblations:
    def test_spike_transmission_tradeoff(self):
        result = ablations.run_spike_transmission()
        rows = {r["scheme"]: r for r in result.rows}
        train = rows["spike train (FPSA)"]
        count = rows["spike count (PipeLayer-style)"]
        assert train["comm_latency_ns"] > count["comm_latency_ns"]
        assert train["streaming_handoff_cycles"] < count["streaming_handoff_cycles"]
        assert train["buffer_bits_per_value"] < count["buffer_bits_per_value"]

    def test_pooling_synthesis_consumes_large_pe_share(self):
        result = ablations.run_pooling_synthesis(duplication_degree=16)
        synthesized = result.rows[0]
        assert synthesized["pooling_share"] > 0.3
        assert result.rows[1]["pooling_pes"] == 0

    def test_speedup_decomposition_ordering(self):
        result = ablations.run_speedup_decomposition()
        rows = {r["architecture"]: r for r in result.rows}
        assert rows["FP-PRIME"]["speedup_over_PRIME"] > 1
        assert rows["FPSA"]["speedup_over_PRIME"] > rows["FP-PRIME"]["speedup_over_PRIME"]


class TestMotivation:
    def test_vgg16_imbalance_notes(self):
        result = motivation.run("VGG16")
        assert any("first two conv layers" in note for note in result.notes)
        assert any("imbalance" in note for note in result.notes)

    def test_mlp_is_balanced(self):
        result = motivation.run("MLP-500-100")
        shares = [(row["weight_share"], row["ops_share"]) for row in result.rows]
        for weight_share, ops_share in shares:
            assert ops_share == pytest.approx(weight_share, rel=1e-6)


class TestRunner:
    def test_registry_contains_all_paper_artifacts(self):
        for key in ("table1", "table2", "table3", "fig2", "fig6", "fig7", "fig8", "fig9"):
            assert key in EXPERIMENTS

    def test_run_all_selected(self):
        results = run_all(["table1", "table2"])
        assert set(results) == {"table1", "table2"}

    def test_unknown_experiment_rejected(self):
        from repro.errors import InvalidRequestError

        with pytest.raises(InvalidRequestError):
            run_all(["figure42"])

    def test_unknown_experiment_rejected_before_any_runs(self):
        # validation happens up front: a bad name alongside good ones runs nothing
        from repro.errors import InvalidRequestError

        with pytest.raises(InvalidRequestError, match="figure42"):
            run_all(["table1", "figure42"])
