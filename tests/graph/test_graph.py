"""Tests of the computational-graph container."""

import pytest

from repro.graph.graph import ComputationalGraph, GraphValidationError
from repro.graph.ops import Add, Dense, InputOp, ReLU


def small_graph() -> ComputationalGraph:
    g = ComputationalGraph("tiny")
    g.add("input", InputOp((8,)))
    g.add("fc1", Dense(4), ["input"])
    g.add("relu1", ReLU(), ["fc1"])
    g.add("fc2", Dense(2), ["relu1"])
    return g


class TestGraphConstruction:
    def test_shapes_inferred_on_add(self):
        g = small_graph()
        assert g.node("fc1").output.shape == (4,)
        assert g.node("fc2").output.shape == (2,)

    def test_duplicate_name_rejected(self):
        g = small_graph()
        with pytest.raises(GraphValidationError):
            g.add("fc1", Dense(3), ["input"])

    def test_unknown_input_rejected(self):
        g = ComputationalGraph("bad")
        g.add("input", InputOp((4,)))
        with pytest.raises(GraphValidationError):
            g.add("fc", Dense(2), ["missing"])

    def test_arity_checked_on_add(self):
        g = ComputationalGraph("bad")
        g.add("input", InputOp((4,)))
        with pytest.raises(ValueError):
            g.add("add", Add(), ["input"])


class TestGraphQueries:
    def test_len_contains_iter(self):
        g = small_graph()
        assert len(g) == 4
        assert "fc1" in g
        assert "missing" not in g
        assert [n.name for n in g] == ["input", "fc1", "relu1", "fc2"]

    def test_input_and_output_nodes(self):
        g = small_graph()
        assert [n.name for n in g.input_nodes()] == ["input"]
        assert [n.name for n in g.output_nodes()] == ["fc2"]

    def test_consumers(self):
        g = small_graph()
        assert [n.name for n in g.consumers("fc1")] == ["relu1"]
        assert g.consumers("fc2") == []

    def test_node_lookup_error(self):
        with pytest.raises(KeyError):
            small_graph().node("nope")


class TestValidationAndCounting:
    def test_validate_passes_for_well_formed_graph(self):
        small_graph().validate()

    def test_validate_detects_missing_input(self):
        g = ComputationalGraph("no-input")
        with pytest.raises(GraphValidationError):
            g.validate()

    def test_total_params_and_ops(self):
        g = small_graph()
        assert g.total_params() == 8 * 4 + 4 * 2
        assert g.total_ops() == 2 * (8 * 4 + 4 * 2) + 4  # + ReLU ops

    def test_topological_order_respects_dependencies(self):
        g = ComputationalGraph("diamond")
        g.add("input", InputOp((4,)))
        g.add("left", Dense(4), ["input"])
        g.add("right", Dense(4), ["input"])
        g.add("join", Add(), ["left", "right"])
        order = [n.name for n in g.topological()]
        assert order.index("join") > order.index("left")
        assert order.index("join") > order.index("right")

    def test_summary_contains_totals(self):
        text = small_graph().summary()
        assert "total" in text
        assert "fc1" in text
