"""Tests of the fluent graph builder."""

from repro.graph.builder import GraphBuilder
from repro.graph.ops import ReLU


class TestGraphBuilder:
    def test_sequential_chain(self):
        b = GraphBuilder("seq", input_shape=(1, 28, 28))
        b.conv(8, 3, padding=1).maxpool(2).flatten().dense(10).softmax()
        g = b.build()
        g.validate()
        assert g.output_nodes()[0].output.shape == (10,)

    def test_conv_inserts_fused_relu_by_default(self):
        b = GraphBuilder("relu", input_shape=(1, 8, 8))
        b.conv(4, 3, name="c1")
        g = b.build()
        consumers = g.consumers("c1")
        assert len(consumers) == 1
        assert isinstance(consumers[0].op, ReLU)

    def test_conv_without_relu(self):
        b = GraphBuilder("norelu", input_shape=(1, 8, 8))
        b.conv(4, 3, relu=False, name="c1")
        g = b.build()
        assert g.consumers("c1") == []

    def test_checkpoint_and_branching(self):
        b = GraphBuilder("branch", input_shape=(4, 8, 8))
        trunk = b.checkpoint()
        b.conv(4, 1, relu=False, name="left", from_=trunk)
        left = b.current
        b.conv(4, 1, relu=False, name="right", from_=trunk)
        right = b.current
        b.add(left, right)
        g = b.build()
        assert g.output_nodes()[0].output.shape == (4, 8, 8)

    def test_concat_branches(self):
        b = GraphBuilder("cat", input_shape=(4, 8, 8))
        trunk = b.checkpoint()
        b.conv(2, 1, name="a", from_=trunk)
        a = b.current
        b.conv(6, 1, name="b", from_=trunk)
        bb = b.current
        b.concat([a, bb])
        g = b.build()
        assert g.output_nodes()[0].output.shape == (8, 8, 8)

    def test_generated_names_are_unique(self):
        b = GraphBuilder("auto", input_shape=(16,))
        b.dense(8).dense(4).dense(2)
        g = b.build()
        assert len(g) == 4  # input + 3 dense

    def test_named_layers_preserved(self):
        b = GraphBuilder("named", input_shape=(16,))
        b.dense(8, name="hidden").dense(2, name="logits")
        g = b.build()
        assert "hidden" in g
        assert "logits" in g

    def test_dense_with_relu(self):
        b = GraphBuilder("fc", input_shape=(16,))
        b.dense(8, relu=True, name="fc1")
        g = b.build()
        assert isinstance(g.consumers("fc1")[0].op, ReLU)

    def test_misc_layers(self):
        b = GraphBuilder("misc", input_shape=(4, 16, 16))
        b.batchnorm().lrn().avgpool(2).global_avgpool().dropout(0.3)
        g = b.build()
        assert g.output_nodes()[0].output.shape == (4,)
