"""Tests of the tensor operations (shape inference, weight/op counting)."""

import pytest

from repro.graph.ops import (
    LRN,
    Add,
    AvgPool2d,
    BatchNorm,
    Concat,
    Conv2d,
    Dense,
    Dropout,
    Flatten,
    GlobalAvgPool,
    InputOp,
    MaxPool2d,
    ReLU,
    Softmax,
)
from repro.graph.tensor import TensorSpec


FMAP = TensorSpec((3, 32, 32))
VEC = TensorSpec((128,))


class TestConv2d:
    def test_shape_inference_basic(self):
        conv = Conv2d(out_channels=16, kernel=3, padding=1)
        out = conv.infer_shape([FMAP])
        assert out.shape == (16, 32, 32)

    def test_shape_inference_stride(self):
        conv = Conv2d(out_channels=8, kernel=3, stride=2, padding=1)
        assert conv.infer_shape([FMAP]).shape == (8, 16, 16)

    def test_shape_inference_no_padding(self):
        conv = Conv2d(out_channels=8, kernel=5)
        assert conv.infer_shape([FMAP]).shape == (8, 28, 28)

    def test_param_and_op_count(self):
        conv = Conv2d(out_channels=16, kernel=3, padding=1)
        assert conv.param_count([FMAP]) == 3 * 16 * 9
        # MAC = 2 ops; each output position reuses the kernel
        assert conv.op_count([FMAP]) == 2 * 3 * 16 * 9 * 32 * 32

    def test_grouped_conv(self):
        x = TensorSpec((4, 8, 8))
        conv = Conv2d(out_channels=8, kernel=3, padding=1, groups=2)
        assert conv.param_count([x]) == 2 * (2 * 4 * 9)
        assert conv.weight_matrix_shape([x]) == (18, 4)

    def test_groups_must_divide_channels(self):
        conv = Conv2d(out_channels=8, kernel=3, groups=3)
        with pytest.raises(ValueError):
            conv.infer_shape([TensorSpec((4, 8, 8))])

    def test_collapsed_output_rejected(self):
        conv = Conv2d(out_channels=8, kernel=64)
        with pytest.raises(ValueError):
            conv.infer_shape([FMAP])

    def test_rejects_vector_input(self):
        with pytest.raises(ValueError):
            Conv2d(4, 3).infer_shape([VEC])

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            Conv2d(out_channels=0, kernel=3)
        with pytest.raises(ValueError):
            Conv2d(out_channels=4, kernel=3, padding=-1)


class TestDense:
    def test_shape_params_ops(self):
        dense = Dense(out_features=10)
        assert dense.infer_shape([VEC]).shape == (10,)
        assert dense.param_count([VEC]) == 1280
        assert dense.op_count([VEC]) == 2560

    def test_accepts_feature_map_input_by_size(self):
        dense = Dense(out_features=4)
        assert dense.param_count([FMAP]) == FMAP.size * 4

    def test_invalid(self):
        with pytest.raises(ValueError):
            Dense(0)


class TestPooling:
    def test_maxpool_shape(self):
        assert MaxPool2d(2).infer_shape([FMAP]).shape == (3, 16, 16)
        assert MaxPool2d(3, stride=2).infer_shape([FMAP]).shape == (3, 15, 15)
        assert MaxPool2d(3, stride=2, padding=1).infer_shape([FMAP]).shape == (3, 16, 16)

    def test_avgpool_shape(self):
        assert AvgPool2d(2).infer_shape([FMAP]).shape == (3, 16, 16)

    def test_pool_has_no_params(self):
        assert MaxPool2d(2).param_count([FMAP]) == 0

    def test_pool_rejects_vector(self):
        with pytest.raises(ValueError):
            MaxPool2d(2).infer_shape([VEC])

    def test_global_avgpool(self):
        assert GlobalAvgPool().infer_shape([FMAP]).shape == (3,)
        assert GlobalAvgPool().op_count([FMAP]) == FMAP.size


class TestElementwise:
    def test_relu_identity_shape(self):
        assert ReLU().infer_shape([FMAP]).shape == FMAP.shape

    def test_add_requires_matching_shapes(self):
        assert Add().infer_shape([FMAP, FMAP]).shape == FMAP.shape
        with pytest.raises(ValueError):
            Add().infer_shape([FMAP, TensorSpec((3, 16, 16))])

    def test_add_arity(self):
        with pytest.raises(ValueError):
            Add().validate_arity([FMAP])

    def test_concat_channels(self):
        a = TensorSpec((3, 8, 8))
        b = TensorSpec((5, 8, 8))
        assert Concat().infer_shape([a, b]).shape == (8, 8, 8)

    def test_concat_vectors(self):
        assert Concat().infer_shape([VEC, VEC]).shape == (256,)

    def test_concat_mismatched_spatial(self):
        with pytest.raises(ValueError):
            Concat().infer_shape([TensorSpec((3, 8, 8)), TensorSpec((3, 4, 4))])

    def test_batchnorm_params(self):
        assert BatchNorm().param_count([FMAP]) == 6
        assert BatchNorm().param_count([VEC]) == 256

    def test_lrn_identity_shape(self):
        assert LRN().infer_shape([FMAP]).shape == FMAP.shape

    def test_flatten(self):
        assert Flatten().infer_shape([FMAP]).shape == (FMAP.size,)

    def test_dropout_rate_validated(self):
        assert Dropout(0.5).infer_shape([VEC]).shape == VEC.shape
        with pytest.raises(ValueError):
            Dropout(1.0)

    def test_softmax(self):
        assert Softmax().infer_shape([VEC]).shape == VEC.shape
        assert Softmax().op_count([VEC]) == 3 * 128


class TestInputOp:
    def test_produces_declared_shape(self):
        op = InputOp((3, 224, 224))
        assert op.infer_shape([]).shape == (3, 224, 224)
        assert op.n_inputs == 0

    def test_rejects_inputs(self):
        with pytest.raises(ValueError):
            InputOp((3,)).validate_arity([VEC])
