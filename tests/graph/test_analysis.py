"""Tests of the graph profiling analyses (the Section 3 motivation numbers)."""

import pytest

from repro.graph.analysis import profile_graph


class TestProfileGraph:
    def test_mlp_profile_counts(self, mlp_graph):
        profile = profile_graph(mlp_graph)
        assert profile.total_params == 443_000
        assert len(profile.layers) == 3
        assert all(layer.reuse_degree == 1 for layer in profile.layers)

    def test_mlp_is_balanced(self, mlp_graph):
        profile = profile_graph(mlp_graph)
        # no weight sharing: compute share == weight share for every layer
        assert profile.imbalance() == pytest.approx(1.0, rel=1e-6)

    def test_vgg16_first_conv_reuse(self, vgg16_graph):
        profile = profile_graph(vgg16_graph)
        first = profile.layers[0]
        assert first.name == "conv1"
        assert first.reuse_degree == 224 * 224

    def test_vgg16_imbalance_matches_paper_motivation(self, vgg16_graph):
        """Section 3: the first two conv layers hold ~0.028% of the weights
        but perform ~12.5% of the computation; the FC layers hold ~89.3% of
        the weights but only ~0.8% of the computation."""
        profile = profile_graph(vgg16_graph)
        by_name = {layer.name: layer for layer in profile.layers}

        first_two_weights = sum(
            profile.weight_fraction(by_name[n]) for n in ("conv1", "conv2")
        )
        first_two_ops = sum(profile.ops_fraction(by_name[n]) for n in ("conv1", "conv2"))
        assert first_two_weights == pytest.approx(0.00028, rel=0.2)
        assert first_two_ops == pytest.approx(0.125, rel=0.15)

        fc_weights = sum(
            profile.weight_fraction(by_name[n]) for n in ("fc1", "fc2", "fc3")
        )
        fc_ops = sum(profile.ops_fraction(by_name[n]) for n in ("fc1", "fc2", "fc3"))
        assert fc_weights == pytest.approx(0.893, rel=0.02)
        assert fc_ops == pytest.approx(0.008, rel=0.3)

        assert profile.imbalance() > 100

    def test_lenet_weight_matrices(self, lenet_graph):
        profile = profile_graph(lenet_graph)
        by_name = {layer.name: layer for layer in profile.layers}
        assert by_name["conv1"].weight_matrix == (25, 20)
        assert by_name["conv2"].weight_matrix == (500, 50)
        assert by_name["fc1"].weight_matrix == (800, 500)

    def test_fractions_sum_to_one(self, lenet_graph):
        profile = profile_graph(lenet_graph)
        assert sum(profile.weight_fraction(l) for l in profile.layers) == pytest.approx(1.0)
        assert sum(profile.ops_fraction(l) for l in profile.layers) == pytest.approx(1.0)

    def test_max_reuse_degree(self, lenet_graph):
        profile = profile_graph(lenet_graph)
        assert profile.max_reuse_degree == 24 * 24
