"""Tests of tensor shape metadata."""

import numpy as np
import pytest

from repro.graph.tensor import TensorSpec


class TestTensorSpec:
    def test_size_and_bits(self):
        spec = TensorSpec((3, 4, 5), bits=6)
        assert spec.size == 60
        assert spec.bits_total == 360
        assert spec.rank == 3

    def test_feature_map_accessors(self):
        spec = TensorSpec((64, 28, 28))
        assert spec.is_feature_map
        assert spec.channels == 64
        assert spec.height == 28
        assert spec.width == 28

    def test_vector_accessors(self):
        spec = TensorSpec((100,))
        assert spec.is_vector
        assert not spec.is_feature_map
        with pytest.raises(ValueError):
            _ = spec.channels

    def test_flattened(self):
        spec = TensorSpec((2, 3, 4), bits=8, name="x")
        flat = spec.flattened()
        assert flat.shape == (24,)
        assert flat.bits == 8

    def test_invalid_shapes_rejected(self):
        with pytest.raises(ValueError):
            TensorSpec(())
        with pytest.raises(ValueError):
            TensorSpec((0, 3))
        with pytest.raises(ValueError):
            TensorSpec((3,), bits=0)

    def test_with_name(self):
        spec = TensorSpec((3,)).with_name("activations")
        assert spec.name == "activations"

    def test_concrete_arrays(self):
        spec = TensorSpec((2, 3))
        assert spec.zeros().shape == (2, 3)
        rng = np.random.default_rng(0)
        sample = spec.random(rng)
        assert sample.shape == (2, 3)
        assert np.all((sample >= 0) & (sample < 1))

    def test_shape_coerced_to_ints(self):
        spec = TensorSpec((np.int64(3), np.int64(4)))
        assert spec.shape == (3, 4)
        assert all(isinstance(d, int) for d in spec.shape)
