"""Legacy setup shim so `pip install -e .` works in offline environments
that lack the `wheel` package required by PEP 517 editable builds."""
from setuptools import setup

setup()
