"""Quickstart: deploy a benchmark network onto FPSA in a few lines.

Run with::

    python examples/quickstart.py

The example deploys LeNet with a 4x duplication degree, runs the detailed
Algorithm-1 scheduler and the cycle-level pipeline simulator, and prints
the resulting throughput, latency, area and utilization bounds.
"""

from __future__ import annotations

import repro


def main() -> None:
    print("FPSA quickstart: deploying LeNet")
    print("=" * 60)

    result = repro.deploy_model(
        "LeNet",
        duplication_degree=4,
        detailed_schedule=True,
    )

    print(result.summary())
    print()

    netlist = result.mapping.netlist
    print("function-block netlist:", netlist.summary())
    print(f"scheduled core-ops: {len(result.mapping.schedule.ops)}")
    print(f"SMB buffers inserted by the scheduler: {result.mapping.schedule.n_buffers}")
    print(
        "pipeline initiation interval: "
        f"{result.pipeline.initiation_interval_cycles} spike cycles"
    )
    print()

    print("scaling up: the same network at higher duplication degrees")
    for duplication in (1, 4, 16, 64):
        scaled = repro.deploy_model("LeNet", duplication_degree=duplication)
        print(
            f"  {duplication:>3}x duplication: "
            f"{scaled.throughput_samples_per_s:>12,.0f} samples/s on "
            f"{scaled.area_mm2:6.2f} mm^2 "
            f"({scaled.performance.computational_density_ops_per_mm2 / 1e12:.2f} TOPS/mm^2)"
        )
    print()

    print("service layer: the same compile as a wire-level request/response")
    client = repro.FPSAClient()
    response = client.compile(
        repro.CompileRequest(model="LeNet", duplication_degree=4)
    )
    rebuilt = repro.CompileResponse.from_json(response.to_json())
    assert rebuilt == response, "wire round trip must be lossless"
    print(
        f"  status: {response.status}   "
        f"throughput: {response.summary.performance['throughput_samples_per_s']:,.0f} samples/s   "
        f"stage cache: {response.timings.cache_hits} hit(s), "
        f"{response.timings.cache_misses} miss(es)"
    )
    failed = client.compile(repro.CompileRequest(model="LeNet", pe_budget=1))
    print(f"  a failed compile surfaces a typed payload: [{failed.error.code}] "
          f"{failed.error.message}")


if __name__ == "__main__":
    main()
