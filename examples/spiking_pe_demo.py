"""Functional demo of the spiking processing element (Equation 6).

The script programs a small signed weight matrix into the ReRAM crossbar
model, runs the cycle-level spiking simulation (charging units,
integrate-and-fire neurons, spike subtracters) and compares the output
spike counts against the ideal fixed-point ReLU(Wx) — demonstrating that
the simplified PE still computes a vector-matrix multiplication followed by
ReLU, which is the key circuit-level claim of Section 4.2.

Run with::

    python examples/spiking_pe_demo.py
"""

from __future__ import annotations

import numpy as np

from repro.arch.params import PEParams
from repro.arch.pe import ProcessingElement
from repro.arch.reram import ReRAMCellModel
from repro.arch.spiking import encode_to_counts


def main() -> None:
    rng = np.random.default_rng(42)
    params = PEParams(rows=64, physical_cols=64, logical_cols=32, io_bits=6)
    window = params.sampling_window

    weights = rng.uniform(-0.15, 0.15, size=(16, 8))
    inputs = rng.uniform(0.0, 1.0, size=16)

    print("spiking PE demo")
    print(f"  crossbar tile: {weights.shape[0]} x {weights.shape[1]} signed weights")
    print(f"  sampling window: {window} cycles ({params.io_bits}-bit I/O)")
    print(f"  per-VMM latency: {params.vmm_latency_ns:.1f} ns")
    print()

    ideal_pe = ProcessingElement(weights, params=params, cell=ReRAMCellModel(sigma=0.0))
    noisy_pe = ProcessingElement(
        weights,
        params=params,
        cell=ReRAMCellModel(sigma=0.04),
        variation_rng=rng,
    )

    counts_in = encode_to_counts(inputs, window)
    ideal_counts = ideal_pe.run_counts(counts_in)
    noisy_counts = noisy_pe.run_counts(counts_in)
    reference = np.minimum(np.floor(np.clip(weights.T @ counts_in, 0, None)), window)

    print(f"{'column':>6} {'ReLU(Wx) ref':>14} {'ideal device':>14} {'with variation':>15}")
    for j in range(weights.shape[1]):
        print(f"{j:>6} {int(reference[j]):>14} {int(ideal_counts[j]):>14} "
              f"{int(noisy_counts[j]):>15}")

    error = np.abs(ideal_counts - reference)
    print()
    print(f"max |ideal device - reference| = {int(error.max())} spike(s) "
          f"(quantisation of the {window}-cycle window)")
    print("the spike-train output of the crossbar is the ReLU'd product, "
          "as Equation 6 derives.")


if __name__ == "__main__":
    main()
