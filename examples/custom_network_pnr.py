"""Deploy a user-defined CNN through the complete detailed flow.

This example exercises every layer of the system stack on a custom network
built with the public :class:`~repro.graph.GraphBuilder` API:

1. neural synthesis to a core-op graph,
2. spatial-to-temporal mapping with the Algorithm-1 scheduler,
3. simulated-annealing placement and PathFinder routing on the island-style
   fabric (the step mrVPR performs in the paper),
4. cycle-level pipeline simulation,
5. the analytic performance report and its utilization bounds.

Run with::

    python examples/custom_network_pnr.py
"""

from __future__ import annotations

from repro.core.compiler import FPSACompiler
from repro.graph import GraphBuilder
from repro.mapper.schedule import validate_schedule


def build_custom_cnn():
    """A small CIFAR-style CNN with a residual connection."""
    builder = GraphBuilder("custom-cnn", input_shape=(3, 32, 32))
    builder.conv(16, 3, padding=1, name="stem")
    trunk = builder.checkpoint()
    builder.conv(16, 3, padding=1, relu=False, name="res_branch", from_=trunk)
    builder.add(builder.current, trunk, name="res_join")
    builder.maxpool(2, name="pool1")
    builder.conv(32, 3, padding=1, name="conv2")
    builder.maxpool(2, name="pool2")
    builder.flatten().dense(64, relu=True, name="fc1").dense(10, name="fc2").softmax()
    return builder.build()


def main() -> None:
    graph = build_custom_cnn()
    print(graph.summary())
    print()

    compiler = FPSACompiler()
    result = compiler.compile(
        graph,
        duplication_degree=4,
        detailed_schedule=True,
        run_pnr=True,
        pnr_channel_width=32,
    )

    print(result.summary())
    print()

    print("core-op graph")
    print(result.coreops.summary())
    print()

    schedule = result.mapping.schedule
    violations = validate_schedule(schedule, result.coreops.expand())
    print(f"schedule constraint check: {'OK' if not violations else violations}")

    pnr = result.pnr
    print(f"fabric: {pnr.fabric.width} x {pnr.fabric.height} sites, "
          f"channel width {pnr.channel_width}")
    print(f"total wirelength: {pnr.total_wirelength} segments")
    print(f"mean routed path: {pnr.mean_route_segments:.1f} segments")
    print(f"communication critical path: {pnr.critical_path_ns:.3f} ns "
          f"({pnr.timing.critical_net})")
    print(f"spike-transfer cycle achievable on this fabric: "
          f"{pnr.timing.spike_cycle_ns(compiler.config.pe.cycle_ns):.3f} ns")


if __name__ == "__main__":
    main()
