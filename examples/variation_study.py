"""Device-variation study: the splice vs add weight representations (Fig. 9).

The script sweeps the number of 4-bit ReRAM cells per weight and reports,
for each representation method,

* the closed-form normalized deviation (Section 7.2),
* the calibrated normalized-accuracy surrogate used for Figure 9, and
* a Monte-Carlo accuracy measurement on the numeric crossbar device model
  (a synthetic matched-filter classification task stands in for ImageNet).

Run with::

    python examples/variation_study.py
"""

from __future__ import annotations

from repro.variation import (
    accuracy_sweep,
    measured_cell,
    normalized_deviation,
    run_montecarlo,
)

CELL_COUNTS = (1, 2, 4, 8, 16)


def main() -> None:
    cell = measured_cell()
    print(f"device model: {cell.bits}-bit cells, sigma = {cell.sigma:.3f} of the range")
    print()
    header = (f"{'method':<8} {'cells':>5} {'deviation':>10} "
              f"{'surrogate acc':>14} {'monte-carlo acc':>16}")
    print(header)
    print("-" * len(header))

    for method in ("splice", "add"):
        for point in accuracy_sweep(method, list(CELL_COUNTS), cell):
            mc = run_montecarlo(method, point.n_cells, cell=cell, trials=3)
            deviation = normalized_deviation(method, point.n_cells, cell)
            print(
                f"{method:<8} {point.n_cells:>5} {deviation:>10.4f} "
                f"{point.normalized_accuracy:>14.3f} {mc.normalized_accuracy:>16.3f}"
            )
        print()

    print("configurations used by the accelerators:")
    prime = accuracy_sweep("splice", [2], cell)[0]
    fpsa = accuracy_sweep("add", [16], cell)[0]
    print(f"  PRIME  (2-cell splice): normalized accuracy {prime.normalized_accuracy:.2f} "
          "(the paper reports ~0.70)")
    print(f"  FPSA  (16-cell add)   : normalized accuracy {fpsa.normalized_accuracy:.2f} "
          "(the paper reports close to full precision)")


if __name__ == "__main__":
    main()
