"""Deploy the ImageNet-scale benchmark networks and explore the design space.

This reproduces the workflow behind Table 3 and Figure 8 of the paper: for
each large CNN the script sweeps the duplication degree, reports
throughput / latency / area / computational density, and then answers the
practical question a system designer asks — "what is the best configuration
that fits a given chip-area budget?"

Run with::

    python examples/imagenet_deployment.py
"""

from __future__ import annotations

from repro.core.compiler import FPSACompiler
from repro.mapper.allocation import allocate_for_pe_budget
from repro.models import PAPER_TABLE3, build_model
from repro.perf.analytic import FPSAArchitecture, evaluate_design_point
from repro.synthesizer import synthesize

MODELS = ("AlexNet", "VGG16", "GoogLeNet", "ResNet152")
DUPLICATION_DEGREES = (1, 4, 16, 64)
AREA_BUDGET_MM2 = 50.0


def sweep_duplication(compiler: FPSACompiler) -> None:
    print(f"{'model':<12} {'dup':>4} {'samples/s':>12} {'latency us':>12} "
          f"{'area mm^2':>10} {'TOPS/mm^2':>10}")
    print("-" * 66)
    for name in MODELS:
        graph = build_model(name)
        for duplication in DUPLICATION_DEGREES:
            result = compiler.compile(graph, duplication_degree=duplication)
            density = result.performance.computational_density_ops_per_mm2 / 1e12
            print(
                f"{name:<12} {duplication:>4} {result.throughput_samples_per_s:>12,.0f} "
                f"{result.latency_us:>12,.1f} {result.area_mm2:>10.2f} {density:>10.2f}"
            )
        reference = PAPER_TABLE3[name]
        print(
            f"{'  paper(64x)':<12} {'':>4} {reference.throughput_samples_per_s:>12,.0f} "
            f"{reference.latency_us:>12,.1f} {reference.area_mm2:>10.2f}"
        )
        print()


def best_fit_for_budget(area_budget_mm2: float) -> None:
    """Pick the largest duplication degree that fits a chip-area budget."""
    arch = FPSAArchitecture()
    print(f"best configurations within a {area_budget_mm2:.0f} mm^2 budget")
    print("-" * 66)
    for name in MODELS:
        graph = build_model(name)
        coreops = synthesize(graph)
        pe_budget = int(area_budget_mm2 / arch.effective_area_per_pe_mm2)
        allocation = allocate_for_pe_budget(coreops, pe_budget)
        if allocation is None:
            print(f"{name:<12} does not fit: needs more than {pe_budget} PEs of storage")
            continue
        report = evaluate_design_point(coreops, allocation, graph.total_ops(), arch)
        print(
            f"{name:<12} duplication {allocation.duplication_degree:>5} -> "
            f"{report.throughput_samples_per_s:>12,.0f} samples/s on "
            f"{report.area_mm2:6.2f} mm^2"
        )


def main() -> None:
    compiler = FPSACompiler()
    sweep_duplication(compiler)
    best_fit_for_budget(AREA_BUDGET_MM2)


if __name__ == "__main__":
    main()
