"""Benchmark: the ablation studies (Sections 7.1 / 7.3 and the Figure 6
speedup decomposition)."""

from repro.experiments import ablations


def test_spike_transmission_ablation(experiment):
    result = experiment(ablations.run_spike_transmission)
    rows = {row["scheme"]: row for row in result.rows}
    train = rows["spike train (FPSA)"]
    count = rows["spike count (PipeLayer-style)"]
    assert train["streaming_handoff_cycles"] < count["streaming_handoff_cycles"]
    assert train["comm_latency_ns"] > count["comm_latency_ns"]


def test_pooling_synthesis_ablation(experiment):
    result = experiment(ablations.run_pooling_synthesis)
    assert result.rows[0]["pooling_share"] > 0.3


def test_speedup_decomposition_ablation(experiment):
    result = experiment(ablations.run_speedup_decomposition)
    rows = {row["architecture"]: row for row in result.rows}
    assert rows["FPSA"]["speedup_over_PRIME"] > rows["FP-PRIME"]["speedup_over_PRIME"] > 1
