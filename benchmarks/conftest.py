"""Benchmark-harness configuration.

Every benchmark regenerates one table or figure of the paper through the
experiment harnesses in :mod:`repro.experiments` and prints the resulting
rows, so running ``pytest benchmarks/ --benchmark-only`` reproduces the
full evaluation section in one go.  Heavy experiments run a single round
(`pedantic`) — the interesting output is the regenerated data, not
sub-millisecond timing noise.
"""

from __future__ import annotations

import pytest


def run_experiment(benchmark, runner, *args, **kwargs):
    """Run one experiment under pytest-benchmark (single round) and print it."""
    result = benchmark.pedantic(lambda: runner(*args, **kwargs), rounds=1, iterations=1)
    print()
    print(result.format())
    return result


@pytest.fixture
def experiment(benchmark):
    """Fixture exposing the single-round experiment runner."""

    def _run(runner, *args, **kwargs):
        return run_experiment(benchmark, runner, *args, **kwargs)

    return _run
