"""Benchmark: regenerate the Section 3 motivation analysis (VGG16 imbalance)."""

import pytest

from repro.experiments import motivation


def test_motivation(experiment):
    result = experiment(motivation.run)
    by_layer = {row["layer"]: row for row in result.rows}
    # the paper's headline imbalance: tiny-weight early convs do a large
    # share of the work, huge-weight FC layers do almost none.
    first_two_weights = by_layer["conv1"]["weight_share"] + by_layer["conv2"]["weight_share"]
    first_two_ops = by_layer["conv1"]["ops_share"] + by_layer["conv2"]["ops_share"]
    fc_weights = sum(by_layer[n]["weight_share"] for n in ("fc1", "fc2", "fc3"))
    fc_ops = sum(by_layer[n]["ops_share"] for n in ("fc1", "fc2", "fc3"))
    assert first_two_weights == pytest.approx(0.00028, rel=0.25)
    assert first_two_ops == pytest.approx(0.125, rel=0.2)
    assert fc_weights == pytest.approx(0.893, rel=0.03)
    assert fc_ops == pytest.approx(0.008, rel=0.4)
