"""Benchmark: regenerate Figure 2 (PRIME peak/ideal/real vs area, VGG16)."""

from repro.experiments import fig2


def test_fig2(experiment):
    result = experiment(fig2.run)
    mapped = [row for row in result.rows if row["mapped"]]
    assert mapped, "no mappable area point"
    last = mapped[-1]
    # the communication bound leaves a large ideal-vs-real gap at large areas
    assert last["ideal_ops"] / last["real_ops"] > 100
    assert all(row["peak_ops"] >= row["ideal_ops"] >= row["real_ops"] for row in mapped)
