"""Benchmark: regenerate Figure 6 (PRIME vs FP-PRIME vs FPSA, up to ~1000x)."""

from repro.experiments import fig6


def test_fig6(experiment):
    result = experiment(fig6.run)
    speedups = [
        row["speedup_FPSA"] for row in result.rows
        if row["PRIME_real_ops"] > 0 and row["speedup_FPSA"] == row["speedup_FPSA"]
    ]
    assert max(speedups) > 300
    for row in result.rows:
        if row["PRIME_real_ops"] > 0:
            assert row["FPSA_real_ops"] > row["PRIME_real_ops"]
            assert row["FP-PRIME_real_ops"] > row["PRIME_real_ops"]
