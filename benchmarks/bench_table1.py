"""Benchmark: regenerate Table 1 (function-block parameters)."""

from repro.experiments import table1


def test_table1(experiment):
    result = experiment(table1.run)
    blocks = result.column("block")
    assert any("PE" in block for block in blocks)
