"""Benchmark: regenerate Table 3 (overall FPSA performance per model)."""

from repro.experiments import table3


def test_table3(experiment):
    result = experiment(table3.run)
    by_model = {row["model"]: row for row in result.rows}
    # ordering: small MNIST models are orders of magnitude faster than ImageNet CNNs,
    # and VGG16 is the slowest of the suite (as in the paper's Table 3).
    assert by_model["MLP-500-100"]["throughput_samples_s"] > by_model["AlexNet"]["throughput_samples_s"]
    assert by_model["VGG16"]["throughput_samples_s"] == min(
        row["throughput_samples_s"] for row in result.rows
    )
    for row in result.rows:
        if row["model"] in ("AlexNet", "VGG16", "GoogLeNet", "ResNet152"):
            assert 0.3 < row["area_mm2"] / row["paper_area_mm2"] < 3.0
