"""Benchmark: regenerate Table 2 (PE comparison, ~31x density improvement)."""

import pytest

from repro.experiments import table2


def test_table2(experiment):
    result = experiment(table2.run)
    rows = {row["architecture"]: row for row in result.rows}
    improvement = rows["FPSA"]["density_TOPS_per_mm2"] / rows["PRIME"]["density_TOPS_per_mm2"]
    assert improvement == pytest.approx(30.92, rel=0.05)
