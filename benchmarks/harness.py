#!/usr/bin/env python
"""Standalone entry point for the P&R perf-regression benchmark harness.

Equivalent to ``python -m repro bench``; the implementation lives in
:mod:`repro.bench`.  Run from the repository root::

    PYTHONPATH=src python benchmarks/harness.py --models lenet,mlp
    PYTHONPATH=src python benchmarks/harness.py --models all --check-regression

The report lands in ``BENCH_pnr.json``; the committed copy of that file is
the perf-trajectory baseline that ``--check-regression`` compares against.
"""

import sys

from repro.bench import main

if __name__ == "__main__":
    sys.exit(main())
