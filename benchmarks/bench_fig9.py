"""Benchmark: regenerate Figure 9 (splice vs add normalized accuracy)."""

import pytest

from repro.experiments import fig9


def test_fig9(experiment):
    result = experiment(fig9.run)
    add = {r["n_cells"]: r["normalized_accuracy"] for r in result.rows if r["method"] == "add"}
    splice = {r["n_cells"]: r["normalized_accuracy"] for r in result.rows if r["method"] == "splice"}
    # PRIME configuration (2-cell splice) ~0.70; FPSA configuration (16-cell add) ~full precision
    assert splice[2] == pytest.approx(0.70, abs=0.06)
    assert add[16] > 0.95
    assert all(add[n] > splice[n] for n in add if n > 1)
