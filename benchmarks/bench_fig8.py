"""Benchmark: regenerate Figure 8 (scalability over duplication degrees)."""

from repro.experiments import fig8


def test_fig8(experiment):
    result = experiment(fig8.run)
    by_model: dict[str, list] = {}
    for row in result.rows:
        by_model.setdefault(row["model"], []).append(row)
    for model, rows in by_model.items():
        perf_gain = rows[-1]["real_ops"] / rows[0]["real_ops"]
        area_gain = rows[-1]["area_mm2"] / rows[0]["area_mm2"]
        assert perf_gain >= area_gain, f"{model} should scale super-linearly"
    assert any("geometric-mean" in note for note in result.notes)
