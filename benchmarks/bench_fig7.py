"""Benchmark: regenerate Figure 7 (per-PE latency breakdown)."""

from repro.experiments import fig7


def test_fig7(experiment):
    result = experiment(fig7.run)
    rows = {row["architecture"]: row for row in result.rows}
    assert rows["PRIME"]["communication_ns"] > rows["PRIME"]["computation_ns"]
    assert rows["FP-PRIME"]["communication_ns"] < rows["FP-PRIME"]["computation_ns"]
    assert rows["FPSA"]["communication_ns"] > rows["FPSA"]["computation_ns"]
    assert rows["FPSA"]["total_ns"] < rows["FP-PRIME"]["total_ns"] < rows["PRIME"]["total_ns"]
