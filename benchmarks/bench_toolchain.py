"""Benchmark: raw toolchain throughput (synthesis, mapping, scheduling, P&R).

These time the software stack itself — useful for tracking regressions in
the compiler rather than reproducing a paper figure.
"""

import pytest

from repro.core.compiler import FPSACompiler
from repro.mapper.mapper import SpatialTemporalMapper
from repro.models import build_lenet, build_vgg16
from repro.pnr.pnr import PlaceAndRoute
from repro.synthesizer.synthesizer import synthesize


@pytest.fixture(scope="module")
def vgg16_graph():
    return build_vgg16()


@pytest.fixture(scope="module")
def lenet_graph():
    return build_lenet()


def test_synthesize_vgg16(benchmark, vgg16_graph):
    coreops = benchmark(synthesize, vgg16_graph)
    assert coreops.min_pes() > 2000


def test_map_vgg16_dup64(benchmark, vgg16_graph):
    coreops = synthesize(vgg16_graph)
    mapper = SpatialTemporalMapper()
    result = benchmark(mapper.map, coreops, 64)
    assert result.netlist.n_pe > 2000


def test_full_compile_lenet(benchmark, lenet_graph):
    compiler = FPSACompiler()
    result = benchmark.pedantic(
        lambda: compiler.compile(lenet_graph, duplication_degree=4, detailed_schedule=True),
        rounds=1, iterations=1,
    )
    assert result.throughput_samples_per_s > 0


def test_place_and_route_lenet(benchmark, lenet_graph):
    coreops = synthesize(lenet_graph)
    mapping = SpatialTemporalMapper().map(coreops, duplication_degree=2)
    flow = PlaceAndRoute(channel_width=24, seed=0)
    result = benchmark.pedantic(lambda: flow.run(mapping.netlist), rounds=1, iterations=1)
    assert result.routing.legal
